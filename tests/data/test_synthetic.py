"""Synthetic data generators: shapes, determinism, class structure."""

import numpy as np
import pytest

from repro.data.synthetic import (
    SyntheticImageDataset,
    SyntheticSpec,
    make_blobs,
    make_synthetic_cifar10,
    make_synthetic_mnist,
)


class TestSpec:
    def test_validation(self):
        with pytest.raises(ValueError):
            SyntheticSpec(num_classes=1)
        with pytest.raises(ValueError):
            SyntheticSpec(image_size=2, low_freq=4)


class TestWorld:
    def test_prototype_shapes(self, tiny_world):
        s = tiny_world.spec
        assert tiny_world.prototypes.shape == (
            s.num_classes,
            s.prototypes_per_class,
            s.channels,
            s.image_size,
            s.image_size,
        )

    def test_prototypes_normalized(self, tiny_world):
        flat = tiny_world.prototypes.reshape(4, 3, -1)
        np.testing.assert_allclose(flat.mean(axis=-1), 0.0, atol=1e-4)
        np.testing.assert_allclose(flat.std(axis=-1), 1.0, atol=1e-3)

    def test_same_seed_same_world(self):
        spec = SyntheticSpec(num_classes=3, channels=1, image_size=8)
        a = SyntheticImageDataset(spec, seed=9)
        b = SyntheticImageDataset(spec, seed=9)
        np.testing.assert_array_equal(a.prototypes, b.prototypes)

    def test_different_seed_different_world(self):
        spec = SyntheticSpec(num_classes=3, channels=1, image_size=8)
        a = SyntheticImageDataset(spec, seed=1)
        b = SyntheticImageDataset(spec, seed=2)
        assert not np.allclose(a.prototypes, b.prototypes)


class TestSampling:
    def test_shapes_and_dtype(self, tiny_world):
        ds = tiny_world.sample(32, seed=0)
        assert ds.x.shape == (32, 3, 8, 8) and ds.x.dtype == np.float32
        assert ds.y.shape == (32,)

    def test_deterministic_draws(self, tiny_world):
        a = tiny_world.sample(16, seed=5)
        b = tiny_world.sample(16, seed=5)
        np.testing.assert_array_equal(a.x, b.x)
        np.testing.assert_array_equal(a.y, b.y)

    def test_distinct_seeds_distinct_draws(self, tiny_world):
        a = tiny_world.sample(16, seed=1)
        b = tiny_world.sample(16, seed=2)
        assert not np.allclose(a.x, b.x)

    def test_explicit_labels(self, tiny_world):
        labels = np.array([0, 0, 1, 3])
        ds = tiny_world.sample(4, seed=0, labels=labels)
        np.testing.assert_array_equal(ds.y, labels)

    def test_label_validation(self, tiny_world):
        with pytest.raises(ValueError):
            tiny_world.sample(3, labels=np.array([0, 1]))
        with pytest.raises(ValueError):
            tiny_world.sample(2, labels=np.array([0, 9]))

    def test_class_probs(self, tiny_world):
        ds = tiny_world.sample(400, seed=0, class_probs=[1.0, 0.0, 0.0, 0.0])
        assert (ds.y == 0).all()

    def test_class_signal_present(self, tiny_world):
        """Same-class samples must correlate more than cross-class ones —
        otherwise nothing downstream could learn."""
        ds = tiny_world.sample(200, seed=0)
        x = ds.x.reshape(len(ds), -1)
        x = (x - x.mean(axis=1, keepdims=True)) / (x.std(axis=1, keepdims=True) + 1e-8)
        sims = x @ x.T / x.shape[1]
        same = ds.y[:, None] == ds.y[None, :]
        off_diag = ~np.eye(len(ds), dtype=bool)
        assert sims[same & off_diag].mean() > sims[~same].mean() + 0.05


class TestFactories:
    def test_cifar_like(self):
        tr, te, world = make_synthetic_cifar10(64, 32, image_size=16, seed=0)
        assert tr.x.shape == (64, 3, 16, 16) and te.x.shape == (32, 3, 16, 16)
        assert world.spec.num_classes == 10

    def test_mnist_like(self):
        tr, te, world = make_synthetic_mnist(64, 32, image_size=14, seed=0)
        assert tr.x.shape == (64, 1, 14, 14)

    def test_train_test_from_same_world(self):
        tr, te, world = make_synthetic_cifar10(32, 32, image_size=8, seed=0)
        assert not np.allclose(tr.x[:32], te.x)  # different draws

    def test_blobs(self):
        ds = make_blobs(50, num_classes=3, dim=5, seed=0)
        assert ds.x.shape == (50, 5)
        assert set(np.unique(ds.y)) <= {0, 1, 2}

    def test_blobs_separable(self):
        """High-separation blobs are nearly linearly separable — a nearest-
        centroid rule must score well."""
        tr = make_blobs(300, num_classes=4, dim=8, separation=4.0, seed=0)
        te = make_blobs(100, num_classes=4, dim=8, separation=4.0, seed=0)
        cents = np.stack([tr.x[tr.y == k].mean(axis=0) for k in range(4)])
        pred = np.argmin(((te.x[:, None] - cents[None]) ** 2).sum(-1), axis=1)
        assert (pred == te.y).mean() > 0.9
