"""Batch transforms."""

import numpy as np
import pytest

from repro.data.transforms import (
    Compose,
    GaussianNoise,
    Normalize,
    RandomHorizontalFlip,
    RandomShift,
)


def batch(seed=0, n=8):
    return np.random.default_rng(seed).standard_normal((n, 3, 6, 6)).astype(np.float32)


class TestNormalize:
    def test_standardizes(self):
        x = batch()
        mean = x.mean(axis=(0, 2, 3))
        std = x.std(axis=(0, 2, 3))
        out = Normalize(mean, std)(x, np.random.default_rng(0))
        np.testing.assert_allclose(out.mean(axis=(0, 2, 3)), 0.0, atol=1e-5)
        np.testing.assert_allclose(out.std(axis=(0, 2, 3)), 1.0, atol=1e-4)

    def test_zero_std_rejected(self):
        with pytest.raises(ValueError):
            Normalize([0.0], [0.0])


class TestFlip:
    def test_p1_flips_all(self):
        x = batch()
        out = RandomHorizontalFlip(p=1.0)(x, np.random.default_rng(0))
        np.testing.assert_array_equal(out, x[:, :, :, ::-1])

    def test_p0_identity(self):
        x = batch()
        out = RandomHorizontalFlip(p=0.0)(x, np.random.default_rng(0))
        np.testing.assert_array_equal(out, x)

    def test_input_not_mutated(self):
        x = batch()
        ref = x.copy()
        RandomHorizontalFlip(p=1.0)(x, np.random.default_rng(0))
        np.testing.assert_array_equal(x, ref)


class TestShift:
    def test_preserves_content_multiset(self):
        x = batch()
        out = RandomShift(2)(x, np.random.default_rng(0))
        # circular shift is a permutation of each channel's pixels
        np.testing.assert_allclose(
            np.sort(out.reshape(8, 3, -1), axis=-1),
            np.sort(x.reshape(8, 3, -1), axis=-1),
            atol=1e-6,
        )

    def test_zero_shift_identity(self):
        x = batch()
        out = RandomShift(0)(x, np.random.default_rng(0))
        np.testing.assert_array_equal(out, x)


class TestNoiseAndCompose:
    def test_noise_magnitude(self):
        x = np.zeros((4, 3, 6, 6), dtype=np.float32)
        out = GaussianNoise(0.5)(x, np.random.default_rng(0))
        assert 0.3 < out.std() < 0.7

    def test_compose_order(self):
        x = batch()
        pipeline = Compose([RandomHorizontalFlip(1.0), Normalize([0.0] * 3, [2.0] * 3)])
        out = pipeline(x, np.random.default_rng(0))
        np.testing.assert_allclose(out, x[:, :, :, ::-1] / 2.0, atol=1e-6)
