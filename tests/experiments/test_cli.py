"""CLI surface tests (parsing + the cheap paths)."""

import pytest

from repro.experiments.cli import EXPERIMENTS, build_parser, main


class TestParser:
    def test_experiment_choices(self):
        p = build_parser()
        for name in EXPERIMENTS + ("all", "list"):
            args = p.parse_args([name])
            assert args.experiment == name

    def test_rejects_unknown_experiment(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["table9"])

    def test_settings_validated(self):
        args = build_parser().parse_args(["table1", "--settings", "30", "100"])
        assert args.settings == ["30", "100"]
        with pytest.raises(SystemExit):
            build_parser().parse_args(["table1", "--settings", "99"])

    def test_defaults(self):
        args = build_parser().parse_args(["table2"])
        assert args.methods == ["fedavg", "fednova", "fedprox", "fedkemf"]
        assert args.seed == 0
        assert args.out is None

    def test_checkpoint_flags(self):
        args = build_parser().parse_args(
            ["table1", "--checkpoint-dir", "ck", "--checkpoint-every", "5", "--resume"]
        )
        assert str(args.checkpoint_dir) == "ck"
        assert args.checkpoint_every == 5
        assert args.resume is True
        bare = build_parser().parse_args(["table1"])
        assert bare.checkpoint_dir is None and bare.resume is False


class TestListCommand:
    def test_list_prints_index(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        for name in EXPERIMENTS:
            assert name in out

    def test_unknown_scale_raises(self):
        with pytest.raises(KeyError):
            main(["table1", "--scale", "galactic"])
