"""Scale profiles and client settings."""

import os

import pytest

from repro.experiments.configs import (
    CLIENT_SETTINGS,
    SCALES,
    checkpoint_defaults,
    get_scale,
    scaled_clients,
    scaled_target,
)


class TestScales:
    def test_all_scales_have_all_settings(self):
        for scale in SCALES.values():
            for key in CLIENT_SETTINGS:
                assert key in scale.clients
                assert key in scale.targets

    def test_paper_scale_matches_paper(self):
        p = SCALES["paper"]
        assert p.clients == {"30": 30, "50": 50, "100": 100}
        assert p.targets == {"30": 0.65, "50": 0.57, "100": 0.60}
        assert p.image_size == 32 and p.alpha == 0.1

    def test_client_settings_table(self):
        assert CLIENT_SETTINGS["30"].sample_ratio == 0.4
        assert CLIENT_SETTINGS["50"].sample_ratio == 0.7
        assert CLIENT_SETTINGS["100"].sample_ratio == 0.5
        assert CLIENT_SETTINGS["30"].paper_target == 0.65

    def test_width_for_families(self):
        s = SCALES["smoke"]
        assert s.width_for("resnet-20") == s.width_for("resnet-44")
        assert s.width_for("vgg-11") < 1.0
        assert s.width_for("unknown-model") == 1.0

    def test_scales_monotone_in_size(self):
        assert (
            SCALES["smoke"].image_size
            < SCALES["small"].image_size
            < SCALES["paper"].image_size
        )
        assert SCALES["smoke"].n_train < SCALES["small"].n_train < SCALES["paper"].n_train


class TestGetScale:
    def test_default_is_smoke(self, monkeypatch):
        monkeypatch.delenv("REPRO_SCALE", raising=False)
        assert get_scale().name == "smoke"

    def test_env_var(self, monkeypatch):
        monkeypatch.setenv("REPRO_SCALE", "small")
        assert get_scale().name == "small"

    def test_explicit_overrides_env(self, monkeypatch):
        monkeypatch.setenv("REPRO_SCALE", "small")
        assert get_scale("paper").name == "paper"

    def test_unknown_raises(self):
        with pytest.raises(KeyError):
            get_scale("huge")

    def test_helpers(self, monkeypatch):
        monkeypatch.delenv("REPRO_SCALE", raising=False)
        assert scaled_clients("30") == SCALES["smoke"].clients["30"]
        assert scaled_target("100") == SCALES["smoke"].targets["100"]


class TestCheckpointDefaults:
    def test_disabled_without_dir(self, monkeypatch):
        monkeypatch.delenv("REPRO_CHECKPOINT_DIR", raising=False)
        monkeypatch.setenv("REPRO_RESUME", "1")  # meaningless without a dir
        assert checkpoint_defaults() == {}

    def test_full_plumbing(self, monkeypatch):
        monkeypatch.setenv("REPRO_CHECKPOINT_DIR", "/tmp/sweep")
        monkeypatch.setenv("REPRO_CHECKPOINT_EVERY", "5")
        monkeypatch.setenv("REPRO_RESUME", "true")
        assert checkpoint_defaults() == {
            "checkpoint_dir": "/tmp/sweep",
            "checkpoint_every": 5,
            "resume_from": True,
        }

    def test_dir_only(self, monkeypatch):
        monkeypatch.setenv("REPRO_CHECKPOINT_DIR", "/tmp/sweep")
        monkeypatch.delenv("REPRO_CHECKPOINT_EVERY", raising=False)
        monkeypatch.delenv("REPRO_RESUME", raising=False)
        assert checkpoint_defaults() == {"checkpoint_dir": "/tmp/sweep"}
