"""Internal consistency of the transcribed paper numbers."""

import numpy as np

from repro.experiments import paper


class TestTable1:
    def test_fedavg_rows_are_reference(self):
        for row in paper.TABLE1:
            if row.method == "FedAvg":
                assert row.speedup == 1.0

    def test_fedkemf_round_cost_constant(self):
        """FedKEMF always ships the knowledge network: 2.1 MB per round."""
        for row in paper.TABLE1:
            if row.method == "FedKEMF":
                assert row.round_cost_mb == 2.1

    def test_fednova_round_cost_double_fedavg(self):
        avg = {(r.model, r.clients): r.round_cost_mb for r in paper.TABLE1 if r.method == "FedAvg"}
        for row in paper.TABLE1:
            if row.method == "FedNova":
                assert row.round_cost_mb == 2 * avg[(row.model, row.clients)]

    def test_totals_consistent_with_formula(self):
        """total ≈ rounds × round_cost × sampled_clients (ratio from Table 2)."""
        ratios = {30: 0.4, 50: 0.7, 100: 0.5}
        for row in paper.TABLE1:
            sampled = row.clients * ratios[row.clients]
            expected_gb = row.rounds * row.round_cost_mb * sampled / 1e3
            # the paper's table has some rounding slack
            assert abs(expected_gb - row.total_gb) / row.total_gb < 0.30, row

    def test_fedkemf_speedup_grows_with_model_size(self):
        """The headline shape: bigger local model ⇒ bigger FedKEMF speed-up."""
        at30 = {
            r.model: r.speedup
            for r in paper.TABLE1
            if r.method == "FedKEMF" and r.clients == 30
        }
        assert at30["resnet-20"] < at30["resnet-32"] < at30["vgg-11"]

    def test_failed_rows_at_budget(self):
        for row in paper.TABLE1:
            if row.failed:
                assert row.rounds == 400


class TestTable2:
    def test_fedkemf_has_positive_delta_everywhere(self):
        for row in paper.TABLE2:
            if row.method == "FedKEMF":
                assert row.delta_acc > 0

    def test_fedkemf_round_cost_constant(self):
        for row in paper.TABLE2:
            if row.method == "FedKEMF":
                assert row.round_cost_mb == 2.1

    def test_delta_acc_consistent(self):
        ref = {
            (r.clients, r.model): r.converge_acc for r in paper.TABLE2 if r.method == "FedAvg"
        }
        for row in paper.TABLE2:
            expected = row.converge_acc - ref[(row.clients, row.model)]
            assert abs(expected - row.delta_acc) < 0.002, row


class TestTable3:
    def test_fedkemf_wins(self):
        baselines = {k: v for k, v in paper.TABLE3.items() if k != "FedKEMF"}
        assert paper.TABLE3["FedKEMF"] > max(baselines.values()) + 0.2

    def test_values_are_fractions(self):
        assert all(0 < v < 1 for v in paper.TABLE3.values())


class TestShapes:
    def test_expected_shapes_documented(self):
        assert len(paper.EXPECTED_SHAPES) >= 5
