"""Report assembly."""

import pathlib

from repro.experiments.report import SECTION_ORDER, build_report, collect_sections


class TestCollect:
    def test_empty_dir(self, tmp_path):
        assert collect_sections(tmp_path) == []
        text = build_report(tmp_path)
        assert "No artifacts" in text

    def test_orders_known_sections(self, tmp_path):
        (tmp_path / "figure4.txt").write_text("fig4 body")
        (tmp_path / "table1.txt").write_text("t1 body")
        sections = collect_sections(tmp_path)
        assert [s.stem for s in sections] == ["table1", "figure4"]

    def test_ignores_unknown_files(self, tmp_path):
        (tmp_path / "random_notes.txt").write_text("x")
        assert collect_sections(tmp_path) == []


class TestBuild:
    def test_bodies_embedded_in_code_fences(self, tmp_path):
        (tmp_path / "table3.txt").write_text("FedKEMF wins")
        text = build_report(tmp_path, scale_name="small")
        assert "FedKEMF wins" in text
        assert "```text" in text
        assert "`small`" in text

    def test_missing_sections_listed(self, tmp_path):
        (tmp_path / "table1.txt").write_text("t1")
        text = build_report(tmp_path)
        assert "Missing artifacts" in text
        assert "figure7" in text

    def test_full_set_has_no_missing_note(self, tmp_path):
        for stem, _ in SECTION_ORDER:
            (tmp_path / f"{stem}.txt").write_text(stem)
        text = build_report(tmp_path)
        assert "Missing artifacts" not in text
        # every section title appears
        for _, title in SECTION_ORDER:
            assert title in text
