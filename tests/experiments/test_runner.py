"""Experiment runner at micro scale (each run = a couple of seconds)."""

import numpy as np
import pytest

from repro.experiments.runner import ExperimentRunner, RunKey


@pytest.fixture(scope="module")
def runner(micro_scale):
    return ExperimentRunner(micro_scale)


class TestDataAssembly:
    def test_world_cached(self, runner):
        assert runner.world("cifar10") is runner.world("cifar10")
        assert runner.world("cifar10") is not runner.world("mnist")

    def test_unknown_dataset(self, runner):
        with pytest.raises(KeyError):
            runner.world("svhn")

    def test_fed_dimensions(self, runner):
        fed = runner.fed("cifar10", 4, alpha=0.5)
        assert fed.num_clients == 4
        assert len(fed.server_test) == runner.scale.n_test

    def test_mnist_channels(self, runner):
        fed = runner.fed("mnist", 3, alpha=0.5)
        x, _ = fed.server_test.arrays()
        assert x.shape[1] == 1

    def test_model_fn_applies_scale(self, runner):
        m = runner.model_fn("resnet-20", "cifar10")()
        paper_m = __import__("repro.nn.models", fromlist=["resnet20"]).resnet20(seed=0)
        assert m.num_parameters() < paper_m.num_parameters() / 10

    def test_knowledge_fn_defaults(self, runner):
        k = runner.knowledge_fn("cifar10")()
        assert type(k).__name__ == "CifarResNet"
        k2 = runner.knowledge_fn("mnist")()
        assert type(k2).__name__ == "CNN2Layer"


class TestRunKey:
    def test_normalization(self):
        a = RunKey.make("FedAvg", "ResNet-20", "CIFAR10", "30", 0.4, 0.3, 2, 0)
        b = RunKey.make("fedavg", "resnet-20", "cifar10", "30", 0.4, 0.3, 2, 0)
        assert a == b

    def test_overrides_distinguish(self):
        a = RunKey.make("fedavg", "mlp", "cifar10", "30", 0.4, 0.3, 2, 0, lr=0.1)
        b = RunKey.make("fedavg", "mlp", "cifar10", "30", 0.4, 0.3, 2, 0, lr=0.2)
        assert a != b


class TestRun:
    def test_run_produces_history(self, runner):
        h = runner.run("fedavg", "mlp", setting="30")
        assert h.num_rounds == runner.scale.rounds
        assert h.meta["setting"] == "30"
        assert h.meta["paper_clients"] == 30

    def test_memoized(self, runner):
        h1 = runner.run("fedavg", "mlp", setting="30")
        h2 = runner.run("fedavg", "mlp", setting="30")
        assert h1 is h2

    def test_override_breaks_memo(self, runner):
        h1 = runner.run("fedavg", "mlp", setting="30")
        h2 = runner.run("fedavg", "mlp", setting="30", lr=0.001)
        assert h1 is not h2

    def test_fedkemf_uses_knowledge_payload(self, runner):
        h_avg = runner.run("fedavg", "resnet-32", setting="30")
        h_kemf = runner.run("fedkemf", "resnet-32", setting="30")
        assert h_kemf.round_cost_per_client_mb() < h_avg.round_cost_per_client_mb()

    def test_default_ratio_from_setting(self, runner):
        h = runner.run("fedprox", "mlp", setting="50")
        assert h.sample_ratio == 0.7

    def test_multi_model_run(self, runner):
        h = runner.run_multi_model("fedkemf", setting="30", sample_ratio=0.5)
        assert "multi_model" in h.meta
        assert sum(h.meta["multi_model"].values()) == runner.scale.clients_for("30")
        assert not np.isnan(h.local_accuracies[-1])

    def test_multi_model_baseline(self, runner):
        h = runner.run_multi_model("fedavg", setting="30", sample_ratio=0.5)
        assert h.meta["multi_model"] == {"resnet-20": runner.scale.clients_for("30")}

    def test_fedkd_routes_through_knowledge_branch(self, runner):
        """FedKD communicates the knowledge network, like FedKEMF."""
        h_kd = runner.run("fedkd", "resnet-32", setting="30")
        h_kemf = runner.run("fedkemf", "resnet-32", setting="30")
        assert h_kd.total_bytes == h_kemf.total_bytes
        assert h_kd.algorithm == "FedKD"

    def test_fedmd_ships_logits(self, runner):
        h_md = runner.run("fedmd", "resnet-32", setting="30")
        h_avg = runner.run("fedavg", "resnet-32", setting="30")
        assert h_md.round_cost_per_client_mb() < h_avg.round_cost_per_client_mb() / 5
