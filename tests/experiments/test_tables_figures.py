"""Table/figure computation at micro scale — structure, not absolute values."""

import numpy as np
import pytest

from repro.experiments import figures, tables
from repro.experiments.runner import ExperimentRunner


@pytest.fixture(scope="module")
def runner(micro_scale):
    return ExperimentRunner(micro_scale)


METHODS = ("fedavg", "fedkemf")


class TestTable1:
    def test_structure(self, runner):
        entries = tables.compute_table1(runner, methods=METHODS, settings=("30",))
        assert len(entries) == len(METHODS) * len(tables.TABLE_GRID["30"])
        for e in entries:
            assert e.total_gb >= 0 and e.rounds >= 1
            assert np.isfinite(e.speedup)

    def test_fedavg_is_reference(self, runner):
        entries = tables.compute_table1(runner, methods=METHODS, settings=("30",))
        for e in entries:
            if e.method == "FedAvg":
                assert e.speedup == 1.0 and e.delta_gb == 0.0

    def test_fedkemf_round_cost_constant_across_models(self, runner):
        entries = tables.compute_table1(runner, methods=METHODS, settings=("30",))
        kemf_costs = {e.model: e.round_cost_mb for e in entries if e.method == "FedKEMF"}
        costs = list(kemf_costs.values())
        assert max(costs) - min(costs) < 1e-6

    def test_render_includes_paper_column(self, runner):
        entries = tables.compute_table1(runner, methods=METHODS, settings=("30",))
        text = tables.render_table1(entries)
        assert "Table 1" in text and "paper×" in text
        assert "FedKEMF" in text


class TestTable2:
    def test_structure_and_reference(self, runner):
        entries = tables.compute_table2(runner, methods=METHODS, settings=("30",))
        for e in entries:
            assert 1 <= e.converge_rounds <= runner.scale.rounds
            if e.method == "FedAvg":
                assert e.delta_acc == 0.0
        text = tables.render_table2(entries)
        assert "Table 2" in text


class TestTable3:
    def test_structure(self, runner):
        entries = tables.compute_table3(runner, methods=("fedavg", "fedkemf"), setting="30")
        by = {e.method: e for e in entries}
        assert by["FedAvg"].model_desc == "resnet-20"
        assert by["FedKEMF"].model_desc.startswith("multi(")
        assert all(0 <= e.average_acc <= 1 for e in entries)
        assert "Table 3" in tables.render_table3(entries)


class TestFigures:
    def test_figure4_series(self, runner):
        out = figures.figure4(
            runner, methods=METHODS, panels=(("cifar10", "mlp", "30"),)
        )
        (title, series), = out.items()
        assert "mlp" in title
        for accs in series.values():
            assert len(accs) == runner.scale.rounds
        text = figures.render_series_panel(title, series)
        assert "final=" in text

    def test_figure5_bars(self, runner):
        out = figures.figure5(runner, methods=METHODS, panels=(("cifar10", "mlp", "30"),))
        (title, bars), = out.items()
        assert set(bars) == {"FedAvg", "FedKEMF"}
        assert "█" in figures.render_bars(title, bars)

    def test_figure6_handles_unreached_targets(self, runner):
        out = figures.figure6(runner, methods=METHODS, panels=(("cifar10", "mlp", "30"),))
        (title, bars), = out.items()
        for v in bars.values():
            assert v is None or v >= 1
        rendered = figures.render_bars(title, {"a": None, "b": 3})
        assert "not reached" in rendered

    def test_figure7_stability_entries(self, runner):
        entries = figures.figure7(
            runner, model="mlp", settings=("30",), ratios=(0.5, 1.0), alphas=(1.0,)
        )
        assert len(entries) == 3
        for e in entries:
            assert e.tail_std >= 0
            assert len(e.accuracies) == runner.scale.rounds

    def test_sparkline(self):
        s = figures.sparkline([0.0, 0.5, 1.0], 0.0, 1.0)
        assert len(s) == 3
        assert s[0] == " " and s[-1] == "█"
        assert figures.sparkline([]) == ""
