"""Deeper behavioral tests of the FL algorithms (server-side math, config
knobs, accounting identities)."""

import numpy as np
import pytest

from repro.data.federated import build_federated_dataset
from repro.fl import FedAvg, FedDF, FedNova, FLConfig, Scaffold
from repro.nn.models import MLP
from repro.nn.serialization import average_states


@pytest.fixture(scope="module")
def fed(tiny_world):
    return build_federated_dataset(
        tiny_world, num_clients=4, n_train=240, n_test=80, n_public=80, alpha=1.0, seed=0
    )


def mlp_fn():
    return MLP(3 * 8 * 8, num_classes=4, hidden=(16,), seed=1)


CFG = FLConfig(rounds=2, sample_ratio=0.5, local_epochs=1, batch_size=20, lr=0.05, seed=0)


class TestAccountingIdentities:
    def test_record_bytes_sum_to_meter_total(self, fed):
        algo = FedAvg(mlp_fn, fed, CFG)
        h = algo.run()
        assert sum(r.round_bytes for r in h.records) == algo.meter.total
        assert h.records[-1].cum_bytes == algo.meter.total

    def test_uplink_downlink_split_symmetric_for_fedavg(self, fed):
        algo = FedAvg(mlp_fn, fed, CFG)
        algo.run()
        assert algo.meter.total_up == algo.meter.total_down

    def test_only_selected_clients_charged(self, fed):
        algo = FedAvg(mlp_fn, fed, CFG.with_overrides(sample_ratio=0.5))
        selected = set(algo.sampler.sample(0))
        algo.run(rounds=1)
        charged = set(algo.meter.uplink)
        assert charged == selected

    def test_wall_time_recorded(self, fed):
        h = FedAvg(mlp_fn, fed, CFG).run(rounds=1)
        assert h.records[0].wall_time > 0


class TestFedAvgServerMath:
    def test_full_participation_equal_shards_is_plain_average(self, tiny_world):
        """With IID equal shards and ratio 1.0, the new global equals the
        uniform average of uploaded states."""
        from repro.data.partition import IIDPartitioner

        fed = build_federated_dataset(
            tiny_world, num_clients=4, n_train=240, n_test=80, n_public=80,
            partitioner=IIDPartitioner(4, seed=0), seed=0, local_test_fraction=0.5,
        )
        # force perfectly equal shard sizes
        sizes = {len(d) for d in fed.client_train}
        cfg = CFG.with_overrides(sample_ratio=1.0, rounds=1)
        algo = FedAvg(mlp_fn, fed, cfg)

        uploads = []
        orig_upload = algo.channel.upload

        def spy(cid, state, **kw):
            out = orig_upload(cid, state, **kw)
            uploads.append(out)
            return out

        algo.channel.upload = spy
        algo.run()
        if len(sizes) == 1:  # equal shards → uniform average must match
            expected = average_states(uploads)
            got = algo.global_model.state_dict()
            for k in expected:
                np.testing.assert_allclose(got[k], expected[k], atol=1e-5)


class TestServerLr:
    def test_scaffold_server_lr_zero_freezes_model(self, fed):
        cfg = CFG.with_overrides(server_lr=0.0, rounds=1)
        algo = Scaffold(mlp_fn, fed, cfg)
        before = {k: v.copy() for k, v in algo.global_model.state_dict().items()}
        algo.run()
        after = algo.global_model.state_dict()
        for k in before:
            if "weight" in k or "bias" in k:
                np.testing.assert_allclose(after[k], before[k], atol=1e-6)

    def test_fednova_server_lr_scales_update(self, fed):
        def delta_for(lr):
            cfg = CFG.with_overrides(server_lr=lr, rounds=1)
            algo = FedNova(mlp_fn, fed, cfg)
            before = {k: v.copy() for k, v in algo.global_model.state_dict().items()}
            algo.run()
            after = algo.global_model.state_dict()
            key = next(k for k in before if k.endswith("weight"))
            return after[key] - before[key]

        d1 = delta_for(1.0)
        d2 = delta_for(2.0)
        np.testing.assert_allclose(d2, 2 * d1, atol=1e-4)


class TestFedDFKnobs:
    def test_explicit_vote_strategy_honored(self, fed):
        """FedDF maps the default 'max' to 'mean' but must honor an explicit
        non-default choice."""
        import repro.core.fusion as fusion_mod

        seen = {}
        orig = fusion_mod.fuse_ensemble_distill

        def spy(*args, **kwargs):
            seen["strategy"] = kwargs.get("strategy", args[5] if len(args) > 5 else None)
            return orig(*args, **kwargs)

        algo = FedDF(mlp_fn, fed, CFG.with_overrides(ensemble="vote", rounds=1))
        import repro.fl.algorithms.feddf as feddf_mod

        feddf_mod.fuse_ensemble_distill, saved = spy, feddf_mod.fuse_ensemble_distill
        try:
            algo.run()
        finally:
            feddf_mod.fuse_ensemble_distill = saved
        assert seen["strategy"] == "vote"

    def test_default_max_becomes_mean(self, fed):
        seen = {}
        import repro.fl.algorithms.feddf as feddf_mod

        orig = feddf_mod.fuse_ensemble_distill

        def spy(*args, **kwargs):
            seen["strategy"] = kwargs.get("strategy")
            return orig(*args, **kwargs)

        feddf_mod.fuse_ensemble_distill = spy
        try:
            FedDF(mlp_fn, fed, CFG.with_overrides(rounds=1)).run()
        finally:
            feddf_mod.fuse_ensemble_distill = orig
        assert seen["strategy"] == "mean"


class TestRunLoopContract:
    def test_run_rounds_argument_overrides_config(self, fed):
        h = FedAvg(mlp_fn, fed, CFG).run(rounds=1)
        assert h.num_rounds == 1

    def test_histories_independent_between_runs(self, fed):
        algo = FedAvg(mlp_fn, fed, CFG)
        h1 = algo.run(rounds=1)
        algo2 = FedAvg(mlp_fn, fed, CFG)
        h2 = algo2.run(rounds=1)
        assert h1 is not h2
        assert h1.num_rounds == h2.num_rounds == 1
