"""Integration tests: every baseline algorithm runs, meters correctly, learns.

Uses a 4-class 8×8 synthetic world with tiny MLP/CNN models so each test
stays in the sub-second to few-second range.
"""

import numpy as np
import pytest

from repro.data.federated import build_federated_dataset
from repro.fl import (
    ALGORITHM_REGISTRY,
    FedAvg,
    FedDF,
    FedNova,
    FedProx,
    FLConfig,
    Scaffold,
)
from repro.nn.models import MLP, build_model


@pytest.fixture(scope="module")
def fed(tiny_world):
    return build_federated_dataset(
        tiny_world, num_clients=4, n_train=240, n_test=80, n_public=80, alpha=1.0, seed=0
    )


def mlp_fn():
    return MLP(3 * 8 * 8, num_classes=4, hidden=(16,), seed=1)


CFG = FLConfig(rounds=2, sample_ratio=0.5, local_epochs=1, batch_size=20, lr=0.05, seed=0)

ALL_ALGOS = [FedAvg, FedProx, FedNova, Scaffold, FedDF]


class TestAllAlgorithmsRun:
    @pytest.mark.parametrize("cls", ALL_ALGOS)
    def test_two_rounds_produce_history(self, cls, fed):
        h = cls(mlp_fn, fed, CFG).run()
        assert h.num_rounds == 2
        assert h.algorithm == cls.name
        assert (h.accuracies >= 0).all() and (h.accuracies <= 1).all()
        assert h.total_bytes > 0
        assert h.records[0].num_selected == 2

    @pytest.mark.parametrize("cls", ALL_ALGOS)
    def test_deterministic_given_seed(self, cls, fed):
        h1 = cls(mlp_fn, fed, CFG).run()
        h2 = cls(mlp_fn, fed, CFG).run()
        np.testing.assert_allclose(h1.accuracies, h2.accuracies)
        assert h1.total_bytes == h2.total_bytes


class TestLearning:
    def test_fedavg_learns(self, fed):
        cfg = CFG.with_overrides(rounds=8, sample_ratio=1.0, local_epochs=2)
        h = FedAvg(mlp_fn, fed, cfg).run()
        assert h.best_accuracy > 0.55  # 4 classes, chance = 0.25

    def test_global_model_changes_each_round(self, fed):
        algo = FedAvg(mlp_fn, fed, CFG)
        before = algo.global_model.state_dict()
        algo.run(rounds=1)
        after = algo.global_model.state_dict()
        assert any(not np.allclose(before[k], after[k]) for k in before)


class TestCommunicationAccounting:
    def test_fedavg_cost_is_two_payloads(self, fed):
        h = FedAvg(mlp_fn, fed, CFG).run(rounds=1)
        payload = mlp_fn().num_bytes()
        per_client = h.records[0].round_bytes / h.records[0].num_selected
        assert payload * 2 <= per_client < payload * 2.05

    def test_fednova_and_scaffold_cost_double(self, fed):
        base = FedAvg(mlp_fn, fed, CFG).run(rounds=1).records[0].round_bytes
        nova = FedNova(mlp_fn, fed, CFG).run(rounds=1).records[0].round_bytes
        scaf = Scaffold(mlp_fn, fed, CFG).run(rounds=1).records[0].round_bytes
        assert 1.7 < nova / base < 2.1
        assert 1.9 < scaf / base < 2.1

    def test_cost_scales_with_model(self, fed):
        small = FedAvg(mlp_fn, fed, CFG).run(rounds=1).total_bytes
        big_fn = lambda: MLP(3 * 8 * 8, 4, hidden=(64, 64), seed=1)
        big = FedAvg(big_fn, fed, CFG).run(rounds=1).total_bytes
        assert big > 1.5 * small


class TestFedProx:
    def test_prox_zero_matches_fedavg(self, fed):
        cfg = CFG.with_overrides(prox_mu=0.0)
        h_prox = FedProx(mlp_fn, fed, cfg).run()
        h_avg = FedAvg(mlp_fn, fed, CFG).run()
        np.testing.assert_allclose(h_prox.accuracies, h_avg.accuracies, atol=1e-6)

    def test_stronger_mu_reduces_drift(self, fed):
        """The proximal pull shrinks the distance clients move from the
        broadcast weights (momentum off so the effect is clean)."""

        def drift_for(mu: float) -> float:
            cfg = CFG.with_overrides(prox_mu=mu, rounds=1, sample_ratio=1.0, momentum=0.0)
            algo = FedProx(mlp_fn, fed, cfg)
            before = {k: v.copy() for k, v in algo.global_model.state_dict().items()}
            algo.run()
            after = algo.global_model.state_dict()
            return max(np.abs(after[k] - before[k]).max() for k in before if "weight" in k)

        assert drift_for(10.0) < drift_for(0.0)


class TestFedNova:
    def test_heterogeneous_steps_normalized(self, tiny_world):
        """Clients with very different shard sizes: FedNova must still make
        a sane (finite, learning) update."""
        from repro.data.partition import QuantitySkewPartitioner

        fed = build_federated_dataset(
            tiny_world, num_clients=4, n_train=240, n_test=80, n_public=80,
            partitioner=QuantitySkewPartitioner(4, alpha=0.3, seed=0), seed=0,
        )
        cfg = CFG.with_overrides(rounds=4, sample_ratio=1.0)
        h = FedNova(mlp_fn, fed, cfg).run()
        assert np.isfinite(h.accuracies).all()
        assert h.best_accuracy > 0.3


class TestScaffold:
    def test_controls_update(self, fed):
        algo = Scaffold(mlp_fn, fed, CFG)
        algo.run(rounds=2)
        assert algo.client_controls  # some clients visited
        total = sum(np.abs(v).sum() for c in algo.client_controls.values() for v in c.values())
        assert total > 0
        server_total = sum(np.abs(v).sum() for v in algo.server_control.values())
        assert server_total > 0

    def test_momentum_disabled_locally(self, fed):
        algo = Scaffold(mlp_fn, fed, CFG)
        assert all(tr.momentum == 0.0 for tr in algo.trainers)


class TestFedDF:
    def test_distills_on_public(self, fed):
        cfg = CFG.with_overrides(distill_epochs=1, distill_lr=1e-3)
        h = FedDF(mlp_fn, fed, cfg).run()
        assert h.num_rounds == 2

    def test_same_wire_cost_as_fedavg(self, fed):
        a = FedAvg(mlp_fn, fed, CFG).run(rounds=1).total_bytes
        d = FedDF(mlp_fn, fed, CFG).run(rounds=1).total_bytes
        assert a == d  # distillation is server-local, costs nothing on the wire


class TestRegistryAndConfig:
    def test_registry_contains_all(self):
        for name in ("fedavg", "fedprox", "fednova", "scaffold", "feddf", "fedkemf"):
            assert name in ALGORITHM_REGISTRY

    def test_config_overrides(self):
        cfg = FLConfig().with_overrides(lr=0.5, rounds=3)
        assert cfg.lr == 0.5 and cfg.rounds == 3
        assert FLConfig().lr != 0.5  # original untouched

    @pytest.mark.parametrize(
        "bad",
        [
            {"rounds": 0},
            {"sample_ratio": 0.0},
            {"sample_ratio": 1.5},
            {"local_epochs": 0},
            {"batch_size": 0},
            {"lr": 0.0},
            {"distill_lr": -1.0},
            {"kl_weight": -0.1},
            {"prox_mu": -1.0},
        ],
    )
    def test_config_validation(self, bad):
        with pytest.raises(ValueError):
            FLConfig(**bad)

    def test_with_overrides_revalidates(self):
        with pytest.raises(ValueError):
            FLConfig().with_overrides(lr=-1.0)

    def test_eval_local_records(self, fed):
        cfg = CFG.with_overrides(eval_local=True, rounds=1)
        h = FedAvg(mlp_fn, fed, cfg).run()
        assert h.records[0].local_accuracy is not None

    def test_bad_fusion_mode_rejected_by_fedkemf(self, fed):
        from repro.core import FedKEMF

        with pytest.raises(ValueError):
            FedKEMF(mlp_fn, fed, CFG.with_overrides(fusion="bogus"))
