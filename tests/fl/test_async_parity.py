"""Buffered-aggregation regime: parity anchor and staleness behaviour.

The contract (DESIGN.md §10): ``aggregation="buffered"`` with
``buffer_size`` equal to the per-round cohort and ``staleness_alpha = 0``
must reproduce the synchronous run bit for bit — same
``RunHistory.fingerprint()``, same weights — with and without fault
injection. A *small* buffer genuinely changes the trajectory (updates land
stale), records staleness histograms and buffer occupancy, and evicts
updates beyond ``max_staleness`` as ``"stale-evicted"`` failures.

Parity runs disable over-provisioning: the sync server marks surplus
clients the buffered server would happily merge later, which is a real
(intended) regime difference, not a bug.
"""

from __future__ import annotations

import functools

import numpy as np
import pytest

from repro.core.fedkemf import FedKEMF
from repro.data.federated import build_federated_dataset
from repro.data.synthetic import SyntheticImageDataset, SyntheticSpec
from repro.fl.algorithms.base import FLConfig
from repro.fl.algorithms.fedavg import FedAvg
from repro.nn.models import build_model
from repro.runtime.runtime import STALE_EVICTED

ALGOS = {"fedavg": FedAvg, "fedkemf": FedKEMF}

ROUNDS = 4
# Straggler-heavy plan: no dropout, so slow updates *arrive* (late) instead
# of disappearing — the interesting case for a buffer.
FAULTS = "slowdown=6,straggler=0.4"


@pytest.fixture(scope="module")
def fed():
    spec = SyntheticSpec(num_classes=4, channels=1, image_size=8, noise_std=0.25)
    world = SyntheticImageDataset(spec, seed=0)
    return build_federated_dataset(
        world, num_clients=6, n_train=240, n_test=60, n_public=60, alpha=0.5, seed=0
    )


@pytest.fixture(scope="module")
def model_fn():
    return functools.partial(
        build_model, "mlp", num_classes=4, in_channels=1, image_size=8,
        width_mult=0.25, seed=1,
    )


def make_cfg(**overrides) -> FLConfig:
    base = dict(
        rounds=ROUNDS, sample_ratio=0.5, local_epochs=1, batch_size=16,
        seed=1, over_provision=False, distill_epochs=1,
    )
    base.update(overrides)
    return FLConfig(**base)


def degenerate_cfg(algo, **overrides) -> FLConfig:
    """The parity-anchor configuration: buffer as large as the cohort,
    uniform (alpha = 0) weighting — must replay the sync run."""
    return make_cfg(
        aggregation="buffered",
        buffer_size=algo.sampler.per_round,
        staleness_alpha=0.0,
        **overrides,
    )


def assert_same_weights(a, b) -> None:
    sa, sb = a.global_model.state_dict(), b.global_model.state_dict()
    assert list(sa) == list(sb)
    for k in sa:
        np.testing.assert_array_equal(sa[k], sb[k])


class TestParityAnchor:
    @pytest.mark.parametrize("name", sorted(ALGOS))
    def test_degenerate_buffered_is_sync_no_faults(self, name, fed, model_fn):
        cls = ALGOS[name]
        sync_algo = cls(model_fn, fed, make_cfg())
        sync = sync_algo.run()
        buf_algo = cls(model_fn, fed, degenerate_cfg(sync_algo))
        buffered = buf_algo.run()
        assert buffered.fingerprint() == sync.fingerprint()
        assert_same_weights(buf_algo, sync_algo)

    @pytest.mark.parametrize("name", sorted(ALGOS))
    def test_degenerate_buffered_is_sync_under_faults(self, name, fed, model_fn):
        cls = ALGOS[name]
        sync_algo = cls(model_fn, fed, make_cfg(faults=FAULTS))
        sync = sync_algo.run()
        buf_algo = cls(model_fn, fed, degenerate_cfg(sync_algo, faults=FAULTS))
        buffered = buf_algo.run()
        assert buffered.fingerprint() == sync.fingerprint()
        assert_same_weights(buf_algo, sync_algo)

    def test_sync_records_trivial_staleness(self, fed, model_fn):
        history = FedAvg(model_fn, fed, make_cfg(faults=FAULTS)).run()
        for r in history.records:
            assert set(r.staleness) <= {0}
            assert r.buffer_len == 0
        assert list(history.buffer_occupancy) == [0] * ROUNDS

    def test_runtime_meta_records_the_regime(self, fed, model_fn):
        algo = FedAvg(model_fn, fed, make_cfg())
        meta = algo.run().meta["runtime"]
        assert meta["aggregation"] == "sync"
        cohort = algo.sampler.per_round
        buf = FedAvg(
            model_fn,
            fed,
            make_cfg(aggregation="buffered", buffer_size=cohort, staleness_alpha=0.5),
        )
        meta = buf.run().meta["runtime"]
        assert meta["aggregation"] == "buffered"
        assert meta["buffer_size"] == cohort
        assert meta["staleness_alpha"] == 0.5


class TestSmallBuffer:
    def run_buffered(self, fed, model_fn, **overrides):
        base = dict(
            aggregation="buffered", buffer_size=1, staleness_alpha=0.5,
            faults=FAULTS,
        )
        base.update(overrides)
        algo = FedAvg(model_fn, fed, make_cfg(**base))
        return algo, algo.run()

    def test_staleness_accumulates_and_trajectory_diverges(self, fed, model_fn):
        sync = FedAvg(model_fn, fed, make_cfg(faults=FAULTS)).run()
        algo, buffered = self.run_buffered(fed, model_fn)
        # straggler updates landed in later server versions ...
        hist = buffered.staleness_histogram()
        assert any(s > 0 for s in hist)
        # ... the backlog was visible mid-run ...
        assert any(n > 0 for n in buffered.buffer_occupancy[:-1])
        # ... and discounted stale fusion is a genuinely different trajectory.
        assert buffered.fingerprint() != sync.fingerprint()

    def test_end_of_run_flush_empties_the_buffer(self, fed, model_fn):
        algo, buffered = self.run_buffered(fed, model_fn)
        assert len(algo._update_buffer) == 0
        assert buffered.records[-1].buffer_len == 0
        # every merged update is accounted for in the histogram, and each
        # round's participation count matches its staleness entries
        for r in buffered.records:
            assert r.num_selected == sum(r.staleness.values())
        merged = sum(buffered.staleness_histogram().values())
        assert merged == sum(r.num_selected for r in buffered.records)

    def test_max_staleness_evicts_and_records(self, fed, model_fn):
        algo, buffered = self.run_buffered(fed, model_fn, max_staleness=0)
        counts = buffered.total_failures()
        assert counts.get(STALE_EVICTED, 0) > 0
        # nothing stale was merged: the bound actually gated fusion
        assert set(buffered.staleness_histogram()) <= {0}

    def test_alpha_zero_small_buffer_still_merges_uniformly(self, fed, model_fn):
        """alpha = 0 with a small buffer is NOT the sync run (updates land
        late) but every merge keeps full weight — the staleness histogram
        shows lag while the discount stays 1.0 (exercised through the
        all-fresh fast path never firing yet weights staying uniform)."""
        _, a = self.run_buffered(fed, model_fn, staleness_alpha=0.0)
        _, b = self.run_buffered(fed, model_fn, staleness_alpha=2.0)
        assert any(s > 0 for s in a.staleness_histogram())
        # same arrivals, different discounts ⇒ different trajectories
        assert a.fingerprint() != b.fingerprint()
