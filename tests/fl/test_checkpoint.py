"""Persistence round trips, atomicity under simulated crashes, and the
resumable RunCheckpoint format."""

import json
import os

import numpy as np
import pytest

from repro.fl import checkpoint as ckpt_mod
from repro.fl.checkpoint import (
    RUN_CHECKPOINT_VERSION,
    CheckpointError,
    CheckpointManager,
    RunCheckpoint,
    load_history,
    load_model,
    load_run_checkpoint,
    run_checkpoint_path,
    save_history,
    save_model,
    save_run_checkpoint,
)
from repro.fl.history import RoundRecord, RunHistory
from repro.nn.models import MLP


def make_history(n=3):
    h = RunHistory("FedKEMF", "MLP", 4, 0.5, meta={"scale": "smoke"})
    for i in range(1, n + 1):
        h.append(
            RoundRecord(
                round_idx=i, accuracy=0.1 * i, loss=2.0 / i, cum_bytes=100 * i,
                round_bytes=100, num_selected=2, local_accuracy=0.2 * i, wall_time=0.5,
            )
        )
    return h


class TestHistoryRoundTrip:
    def test_full_fidelity(self, tmp_path):
        h = make_history()
        save_history(h, tmp_path / "run.json")
        back = load_history(tmp_path / "run.json")
        assert back.algorithm == h.algorithm
        assert back.meta == h.meta
        np.testing.assert_allclose(back.accuracies, h.accuracies)
        np.testing.assert_array_equal(back.cum_bytes, h.cum_bytes)
        np.testing.assert_allclose(back.local_accuracies, h.local_accuracies)

    def test_creates_parent_dirs(self, tmp_path):
        save_history(make_history(), tmp_path / "a" / "b" / "run.json")
        assert (tmp_path / "a" / "b" / "run.json").exists()


class TestModelRoundTrip:
    def test_weights_identical(self, tmp_path):
        m = MLP(8, 4, hidden=(16,), seed=0)
        save_model(m, tmp_path / "w.bin")
        m2 = MLP(8, 4, hidden=(16,), seed=99)
        load_model(tmp_path / "w.bin", into=m2)
        for (_, p1), (_, p2) in zip(m.named_parameters(), m2.named_parameters()):
            np.testing.assert_array_equal(p1.data, p2.data)

    def test_raw_state_return(self, tmp_path):
        m = MLP(8, 4, seed=0)
        save_model(m.state_dict(), tmp_path / "w.bin")
        state = load_model(tmp_path / "w.bin")
        assert set(state) == set(m.state_dict())


class TestManager:
    def test_save_and_discover(self, tmp_path):
        mgr = CheckpointManager(tmp_path / "ckpt")
        m = MLP(8, 4, seed=0)
        mgr.save("fedkemf-30", make_history(), model=m)
        mgr.save("fedavg-30", make_history(2))
        assert mgr.runs() == ["fedavg-30", "fedkemf-30"]

    def test_load_back(self, tmp_path):
        mgr = CheckpointManager(tmp_path)
        m = MLP(8, 4, seed=0)
        mgr.save("run", make_history(), model=m)
        h = mgr.load_history("run")
        assert h.num_rounds == 3
        m2 = mgr.load_weights("run", into=MLP(8, 4, seed=5))
        np.testing.assert_array_equal(
            next(iter(m2.parameters())).data, next(iter(m.parameters())).data
        )

    def test_missing_entries(self, tmp_path):
        mgr = CheckpointManager(tmp_path)
        with pytest.raises(KeyError):
            mgr.load_history("nope")
        mgr.save("no-weights", make_history())
        with pytest.raises(KeyError):
            mgr.load_weights("no-weights")

    def test_invalid_names(self, tmp_path):
        mgr = CheckpointManager(tmp_path)
        with pytest.raises(ValueError):
            mgr.save("../evil", make_history())
        with pytest.raises(ValueError):
            mgr.save(".hidden", make_history())

    def test_summary(self, tmp_path):
        mgr = CheckpointManager(tmp_path)
        mgr.save("run-a", make_history())
        text = mgr.summary()
        assert "run-a" in text and "FedKEMF" in text

    def test_manifest_survives_reopen(self, tmp_path):
        CheckpointManager(tmp_path).save("r1", make_history())
        assert CheckpointManager(tmp_path).runs() == ["r1"]

    def test_summary_tolerates_legacy_entries(self, tmp_path):
        """Manifests written by older versions (or by save_run_checkpoint
        alone) lack final_accuracy/total_bytes — summary must not KeyError."""
        mgr = CheckpointManager(tmp_path)
        mgr.save("full", make_history())
        manifest = json.loads((tmp_path / "manifest.json").read_text())
        manifest["legacy"] = {"history": "legacy.history.json"}
        manifest["mid-run"] = {"checkpoint": "mid-run.ckpt", "next_round": 7}
        (tmp_path / "manifest.json").write_text(json.dumps(manifest))
        text = mgr.summary()
        assert "legacy" in text and "mid-run" in text
        assert "resumable@r7" in text


def make_run_checkpoint(next_round=3):
    return RunCheckpoint(
        algorithm="FedAvg",
        fingerprint="deadbeefdeadbeef",
        next_round=next_round,
        global_state={"w": np.arange(6, dtype=np.float32).reshape(2, 3)},
        server_state={"velocity": None},
        meter_state={"uplink": {0: 10}, "downlink": {0: 20}, "round_bytes": [30]},
        history=make_history(next_round).to_dict(),
    )


class TestRunCheckpointFormat:
    def test_round_trip(self, tmp_path):
        ckpt = make_run_checkpoint()
        path = save_run_checkpoint(ckpt, tmp_path / "run.ckpt")
        back = load_run_checkpoint(path)
        assert back.algorithm == ckpt.algorithm
        assert back.fingerprint == ckpt.fingerprint
        assert back.next_round == ckpt.next_round
        assert back.version == RUN_CHECKPOINT_VERSION
        np.testing.assert_array_equal(back.global_state["w"], ckpt.global_state["w"])
        assert back.meter_state == ckpt.meter_state
        assert back.history == ckpt.history

    def test_bad_magic_rejected(self, tmp_path):
        p = tmp_path / "junk.ckpt"
        p.write_bytes(b"NOPE" + b"\x00" * 16)
        with pytest.raises(ValueError, match="magic"):
            load_run_checkpoint(p)

    def test_unknown_version_rejected(self, tmp_path):
        ckpt = make_run_checkpoint()
        ckpt.version = RUN_CHECKPOINT_VERSION + 1
        path = save_run_checkpoint(ckpt, tmp_path / "future.ckpt")
        with pytest.raises(ValueError, match="version"):
            load_run_checkpoint(path)

    def test_path_helper_rejects_traversal(self, tmp_path):
        with pytest.raises(ValueError):
            run_checkpoint_path(tmp_path, "../evil")
        with pytest.raises(ValueError):
            run_checkpoint_path(tmp_path, ".hidden")
        assert run_checkpoint_path(tmp_path, "ok").name == "ok.ckpt"

    def test_checkpoint_error_is_a_value_error(self):
        # back-compat: callers catching ValueError keep working
        assert issubclass(CheckpointError, ValueError)

    def test_manager_tracks_checkpoints(self, tmp_path):
        mgr = CheckpointManager(tmp_path)
        ckpt = make_run_checkpoint(next_round=5)
        mgr.save_run_checkpoint("run", ckpt)
        back = mgr.load_run_checkpoint("run")
        assert back.next_round == 5
        with pytest.raises(KeyError):
            mgr.load_run_checkpoint("absent")


class TestCorruptedCheckpoints:
    """Fuzz: truncations and bit flips of a valid checkpoint file must
    surface as :class:`CheckpointError` (or, for a lucky flip, still load a
    valid :class:`RunCheckpoint`) — never a raw pickle/struct/EOF
    traceback and never a non-RunCheckpoint object."""

    def _valid_bytes(self, tmp_path):
        path = save_run_checkpoint(make_run_checkpoint(), tmp_path / "good.ckpt")
        return path.read_bytes()

    def test_truncations_raise_checkpoint_error(self, tmp_path):
        data = self._valid_bytes(tmp_path)
        p = tmp_path / "trunc.ckpt"
        # every prefix class: empty, partial magic, magic only, cut pickle
        for cut in (0, 2, 4, 5, len(data) // 2, len(data) - 1):
            p.write_bytes(data[:cut])
            with pytest.raises(CheckpointError):
                load_run_checkpoint(p)

    def test_bit_flips_never_escape_the_error_type(self, tmp_path):
        data = self._valid_bytes(tmp_path)
        p = tmp_path / "flip.ckpt"
        rng = np.random.default_rng(0)
        for _ in range(64):
            pos = int(rng.integers(len(data)))
            bit = 1 << int(rng.integers(8))
            corrupted = bytearray(data)
            corrupted[pos] ^= bit
            p.write_bytes(bytes(corrupted))
            try:
                back = load_run_checkpoint(p)
            except CheckpointError:
                continue  # the contract: a typed, catchable error
            # a flip in don't-care bytes may still deserialize — but then
            # it must be a real RunCheckpoint, not garbage
            assert isinstance(back, RunCheckpoint)

    def test_wrong_payload_type_rejected(self, tmp_path):
        import pickle

        p = tmp_path / "list.ckpt"
        p.write_bytes(b"RPCK" + pickle.dumps([1, 2, 3]))
        with pytest.raises(CheckpointError, match="field mapping"):
            load_run_checkpoint(p)

    def test_unexpected_fields_rejected(self, tmp_path):
        import dataclasses
        import pickle

        raw = dataclasses.asdict(make_run_checkpoint())
        raw["bogus_field"] = 1
        p = tmp_path / "fields.ckpt"
        p.write_bytes(b"RPCK" + pickle.dumps(raw))
        with pytest.raises(CheckpointError, match="unexpected checkpoint fields"):
            load_run_checkpoint(p)


class TestAtomicity:
    """A crash at the worst possible instant leaves the old file intact."""

    def _crash_on_replace(self, monkeypatch):
        def exploding_replace(src, dst):
            raise OSError("simulated crash mid-rename")

        monkeypatch.setattr(ckpt_mod.os, "replace", exploding_replace)

    def test_history_survives_crashed_rewrite(self, tmp_path, monkeypatch):
        path = tmp_path / "run.json"
        save_history(make_history(3), path)
        before = path.read_bytes()
        self._crash_on_replace(monkeypatch)
        with pytest.raises(OSError):
            save_history(make_history(5), path)
        assert path.read_bytes() == before  # old version intact
        assert list(tmp_path.glob("*.tmp")) == []  # no debris

    def test_run_checkpoint_survives_crashed_rewrite(self, tmp_path, monkeypatch):
        path = tmp_path / "run.ckpt"
        save_run_checkpoint(make_run_checkpoint(2), path)
        self._crash_on_replace(monkeypatch)
        with pytest.raises(OSError):
            save_run_checkpoint(make_run_checkpoint(4), path)
        assert load_run_checkpoint(path).next_round == 2
        assert list(tmp_path.glob("*.tmp")) == []

    def test_manifest_survives_crashed_update(self, tmp_path, monkeypatch):
        mgr = CheckpointManager(tmp_path)
        mgr.save("first", make_history())
        self._crash_on_replace(monkeypatch)
        with pytest.raises(OSError):
            mgr.save("second", make_history())
        monkeypatch.undo()
        # the manifest is still valid JSON listing only the completed save
        assert CheckpointManager(tmp_path).runs() == ["first"]
        assert list(tmp_path.glob("*.tmp")) == []

    def test_interrupted_write_never_partial(self, tmp_path, monkeypatch):
        """Even a crash *during* the temp write leaves no partial target."""
        path = tmp_path / "run.json"

        real_fsync = os.fsync

        def exploding_fsync(fd):
            real_fsync(fd)
            raise OSError("simulated power loss")

        monkeypatch.setattr(ckpt_mod.os, "fsync", exploding_fsync)
        with pytest.raises(OSError):
            save_history(make_history(), path)
        assert not path.exists()
        assert list(tmp_path.glob("*.tmp")) == []
