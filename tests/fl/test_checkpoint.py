"""Persistence round trips."""

import numpy as np
import pytest

from repro.fl.checkpoint import (
    CheckpointManager,
    load_history,
    load_model,
    save_history,
    save_model,
)
from repro.fl.history import RoundRecord, RunHistory
from repro.nn.models import MLP


def make_history(n=3):
    h = RunHistory("FedKEMF", "MLP", 4, 0.5, meta={"scale": "smoke"})
    for i in range(1, n + 1):
        h.append(
            RoundRecord(
                round_idx=i, accuracy=0.1 * i, loss=2.0 / i, cum_bytes=100 * i,
                round_bytes=100, num_selected=2, local_accuracy=0.2 * i, wall_time=0.5,
            )
        )
    return h


class TestHistoryRoundTrip:
    def test_full_fidelity(self, tmp_path):
        h = make_history()
        save_history(h, tmp_path / "run.json")
        back = load_history(tmp_path / "run.json")
        assert back.algorithm == h.algorithm
        assert back.meta == h.meta
        np.testing.assert_allclose(back.accuracies, h.accuracies)
        np.testing.assert_array_equal(back.cum_bytes, h.cum_bytes)
        np.testing.assert_allclose(back.local_accuracies, h.local_accuracies)

    def test_creates_parent_dirs(self, tmp_path):
        save_history(make_history(), tmp_path / "a" / "b" / "run.json")
        assert (tmp_path / "a" / "b" / "run.json").exists()


class TestModelRoundTrip:
    def test_weights_identical(self, tmp_path):
        m = MLP(8, 4, hidden=(16,), seed=0)
        save_model(m, tmp_path / "w.bin")
        m2 = MLP(8, 4, hidden=(16,), seed=99)
        load_model(tmp_path / "w.bin", into=m2)
        for (_, p1), (_, p2) in zip(m.named_parameters(), m2.named_parameters()):
            np.testing.assert_array_equal(p1.data, p2.data)

    def test_raw_state_return(self, tmp_path):
        m = MLP(8, 4, seed=0)
        save_model(m.state_dict(), tmp_path / "w.bin")
        state = load_model(tmp_path / "w.bin")
        assert set(state) == set(m.state_dict())


class TestManager:
    def test_save_and_discover(self, tmp_path):
        mgr = CheckpointManager(tmp_path / "ckpt")
        m = MLP(8, 4, seed=0)
        mgr.save("fedkemf-30", make_history(), model=m)
        mgr.save("fedavg-30", make_history(2))
        assert mgr.runs() == ["fedavg-30", "fedkemf-30"]

    def test_load_back(self, tmp_path):
        mgr = CheckpointManager(tmp_path)
        m = MLP(8, 4, seed=0)
        mgr.save("run", make_history(), model=m)
        h = mgr.load_history("run")
        assert h.num_rounds == 3
        m2 = mgr.load_weights("run", into=MLP(8, 4, seed=5))
        np.testing.assert_array_equal(
            next(iter(m2.parameters())).data, next(iter(m.parameters())).data
        )

    def test_missing_entries(self, tmp_path):
        mgr = CheckpointManager(tmp_path)
        with pytest.raises(KeyError):
            mgr.load_history("nope")
        mgr.save("no-weights", make_history())
        with pytest.raises(KeyError):
            mgr.load_weights("no-weights")

    def test_invalid_names(self, tmp_path):
        mgr = CheckpointManager(tmp_path)
        with pytest.raises(ValueError):
            mgr.save("../evil", make_history())
        with pytest.raises(ValueError):
            mgr.save(".hidden", make_history())

    def test_summary(self, tmp_path):
        mgr = CheckpointManager(tmp_path)
        mgr.save("run-a", make_history())
        text = mgr.summary()
        assert "run-a" in text and "FedKEMF" in text

    def test_manifest_survives_reopen(self, tmp_path):
        CheckpointManager(tmp_path).save("r1", make_history())
        assert CheckpointManager(tmp_path).runs() == ["r1"]
