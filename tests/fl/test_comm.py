"""Communication metering: the foundation of Tables 1–2."""

from collections import OrderedDict

import numpy as np
import pytest

from repro.fl.comm import Channel, CommMeter
from repro.nn.models import resnet20
from repro.nn.serialization import state_dict_num_bytes


def small_state():
    return OrderedDict(w=np.ones((4, 4), dtype=np.float32), b=np.zeros(4, dtype=np.float32))


class TestMeter:
    def test_round_sequencing(self):
        m = CommMeter()
        m.begin_round(0)
        m.begin_round(1)
        with pytest.raises(ValueError):
            m.begin_round(1)  # reopening a closed round corrupts the ledger
        with pytest.raises(ValueError):
            m.begin_round(0)

    def test_resume_gap_backfilled(self):
        """A fresh meter may open at round r (checkpoint resume): earlier
        rounds appear as zero-byte entries so indices stay aligned."""
        m = CommMeter()
        m.begin_round(3)
        m.charge_up(0, 10)
        assert m.round_bytes == [0, 0, 0, 10]
        m.begin_round(4)
        m.charge_down(1, 5)
        assert m.round_bytes == [0, 0, 0, 10, 5]

    def test_charges_accumulate(self):
        m = CommMeter()
        m.begin_round(0)
        m.charge_up(1, 100)
        m.charge_down(1, 50)
        m.charge_up(2, 25)
        assert m.total_up == 125 and m.total_down == 50 and m.total == 175
        assert m.round_bytes == [175]
        assert m.uplink[1] == 100 and m.downlink[1] == 50

    def test_negative_rejected(self):
        m = CommMeter()
        with pytest.raises(ValueError):
            m.charge_up(0, -1)

    def test_cumulative_by_round(self):
        m = CommMeter()
        for r, amount in enumerate([10, 20, 30]):
            m.begin_round(r)
            m.charge_up(0, amount)
        np.testing.assert_array_equal(m.cumulative_by_round(), [10, 30, 60])

    def test_total_gb(self):
        m = CommMeter()
        m.begin_round(0)
        m.charge_down(0, 2_000_000_000)
        assert m.total_gb() == 2.0


class TestChannel:
    def test_download_charges_exact_wire_size(self):
        m = CommMeter()
        ch = Channel(m)
        m.begin_round(0)
        state = small_state()
        out = ch.download(3, state)
        assert m.downlink[3] == state_dict_num_bytes(state)
        np.testing.assert_array_equal(out["w"], state["w"])

    def test_upload_returns_decoupled_copy(self):
        m = CommMeter()
        ch = Channel(m)
        m.begin_round(0)
        state = small_state()
        out = ch.upload(1, state)
        out["w"][...] = -1
        assert not np.allclose(state["w"], -1)

    def test_payload_multiplier(self):
        m = CommMeter()
        ch = Channel(m)
        m.begin_round(0)
        state = small_state()
        ch.download(0, state, payload_multiplier=2.0)
        assert m.downlink[0] == 2 * state_dict_num_bytes(state)

    def test_negative_multiplier_rejected(self):
        m = CommMeter()
        ch = Channel(m)
        m.begin_round(0)
        with pytest.raises(ValueError):
            ch.download(0, small_state(), payload_multiplier=-1.0)
        with pytest.raises(ValueError):
            ch.upload(0, small_state(), payload_multiplier=-0.5)
        assert m.total == 0  # nothing charged on the rejected transfers

    def test_zero_multiplier_charges_nothing(self):
        """0.0 is legal (e.g. a transfer the runtime fully suppressed) and
        must charge zero bytes while still delivering the payload."""
        m = CommMeter()
        ch = Channel(m)
        m.begin_round(0)
        state = small_state()
        out = ch.upload(2, state, payload_multiplier=0.0)
        assert m.total_up == 0
        np.testing.assert_array_equal(out["w"], state["w"])

    def test_real_model_payload_close_to_num_bytes(self):
        """Wire size ≈ raw tensor bytes + small header overhead (<1% at
        paper width, where Tables 1–2 are computed)."""
        model = resnet20(seed=0, width_mult=1.0)
        m = CommMeter()
        ch = Channel(m)
        m.begin_round(0)
        ch.upload(0, model.state_dict())
        raw = model.num_bytes()
        assert raw <= m.total_up < raw * 1.01
