"""Wire codecs: round-trip fidelity, size reduction, channel integration."""

from collections import OrderedDict

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.fl.compression import (
    CODEC_REGISTRY,
    Float16Codec,
    IdentityCodec,
    QuantizedCodec,
    make_codec,
)
from repro.fl.comm import Channel, CommMeter
from repro.nn.serialization import dumps_state_dict, state_dict_num_bytes


def sample_state(seed=0):
    rng = np.random.default_rng(seed)
    return OrderedDict(
        w=rng.standard_normal((16, 16)).astype(np.float32),
        b=rng.standard_normal(16).astype(np.float32) * 10,
        steps=np.array([7], dtype=np.int64),
    )


class TestIdentity:
    def test_round_trip_exact(self):
        s = sample_state()
        c = IdentityCodec()
        out = c.decompress(c.compress(s))
        for k in s:
            np.testing.assert_array_equal(out[k], s[k])


class TestFloat16:
    def test_halves_float_payload(self):
        s = sample_state()
        c = Float16Codec()
        comp = c.compress(s)
        assert comp["w"].dtype == np.float16
        assert comp["steps"].dtype == np.int64  # non-float passthrough
        assert state_dict_num_bytes(comp) < 0.6 * state_dict_num_bytes(s)

    def test_reconstruction_close(self):
        s = sample_state()
        c = Float16Codec()
        out = c.decompress(c.compress(s))
        np.testing.assert_allclose(out["w"], s["w"], atol=1e-2)
        assert out["w"].dtype == np.float32


class TestQuantized:
    @pytest.mark.parametrize("bits", [2, 4, 8])
    def test_round_trip_error_bounded(self, bits):
        s = sample_state()
        c = QuantizedCodec(bits)
        out = c.decompress(c.compress(s))
        for k in ("w", "b"):
            rng_ = float(s[k].max() - s[k].min())
            max_err = np.abs(out[k] - s[k]).max()
            assert max_err <= rng_ * c.max_error() * 1.01, f"{k} err {max_err}"
        np.testing.assert_array_equal(out["steps"], s["steps"])

    def test_q8_quarters_payload(self):
        s = OrderedDict(w=np.random.default_rng(0).standard_normal((64, 64)).astype(np.float32))
        comp = QuantizedCodec(8).compress(s)
        assert state_dict_num_bytes(comp) < 0.30 * state_dict_num_bytes(s)

    def test_q4_eighth_payload(self):
        s = OrderedDict(w=np.random.default_rng(0).standard_normal((64, 64)).astype(np.float32))
        comp = QuantizedCodec(4).compress(s)
        assert state_dict_num_bytes(comp) < 0.16 * state_dict_num_bytes(s)

    def test_constant_tensor(self):
        s = OrderedDict(w=np.full((5, 5), 3.25, dtype=np.float32))
        c = QuantizedCodec(8)
        out = c.decompress(c.compress(s))
        np.testing.assert_allclose(out["w"], s["w"], atol=1e-6)

    def test_shape_preserved(self):
        s = OrderedDict(w=np.random.default_rng(0).standard_normal((3, 4, 5)).astype(np.float32))
        out = QuantizedCodec(4).decompress(QuantizedCodec(4).compress(s))
        assert out["w"].shape == (3, 4, 5)

    def test_invalid_bits(self):
        for bits in (1, 9, 0):
            with pytest.raises(ValueError):
                QuantizedCodec(bits)

    def test_compressed_state_serializable(self):
        s = sample_state()
        payload = dumps_state_dict(QuantizedCodec(8).compress(s))
        assert isinstance(payload, bytes)

    @settings(max_examples=25, deadline=None)
    @given(bits=st.sampled_from([2, 4, 8]), seed=st.integers(0, 500), n=st.integers(1, 64))
    def test_property_error_bound(self, bits, seed, n):
        v = np.random.default_rng(seed).standard_normal(n).astype(np.float32) * 5
        s = OrderedDict(w=v)
        c = QuantizedCodec(bits)
        out = c.decompress(c.compress(s))
        rng_ = float(v.max() - v.min())
        assert np.abs(out["w"] - v).max() <= max(rng_ * c.max_error() * 1.01, 1e-6)


class TestRegistry:
    def test_names(self):
        for name in ("identity", "none", "fp16", "q8", "q4"):
            assert name in CODEC_REGISTRY

    def test_make_codec(self):
        assert make_codec(None).name == "identity"
        assert make_codec("fp16").name == "fp16"
        assert make_codec("q4").name == "q4"
        with pytest.raises(KeyError):
            make_codec("gzip")


class TestChannelIntegration:
    def test_meter_charges_compressed_size(self):
        s = sample_state()
        plain = CommMeter()
        Channel(plain).download(0, s)
        fp16 = CommMeter()
        Channel(fp16, codec=make_codec("fp16")).download(0, s)
        q8 = CommMeter()
        Channel(q8, codec=make_codec("q8")).download(0, s)
        assert fp16.total < 0.6 * plain.total
        assert q8.total < 0.4 * plain.total

    def test_receiver_sees_float32(self):
        s = sample_state()
        out = Channel(CommMeter(), codec=make_codec("q8")).upload(0, s)
        assert out["w"].dtype == np.float32
        assert set(out) == set(s)

    def test_fl_run_with_compression(self, tiny_world):
        from repro.data.federated import build_federated_dataset
        from repro.fl import FedAvg, FLConfig
        from repro.nn.models import MLP

        fed = build_federated_dataset(
            tiny_world, num_clients=3, n_train=120, n_test=40, n_public=40, alpha=1.0, seed=0
        )
        model_fn = lambda: MLP(3 * 8 * 8, 4, hidden=(8,), seed=0)
        cfg = FLConfig(rounds=2, sample_ratio=1.0, local_epochs=1, batch_size=20, seed=0)
        plain = FedAvg(model_fn, fed, cfg).run()
        comp = FedAvg(model_fn, fed, cfg.with_overrides(compression="fp16")).run()
        assert comp.total_bytes < 0.6 * plain.total_bytes
        assert comp.best_accuracy > 0.2  # still learns through the lossy wire
