"""Device profiles and resource-aware model assignment."""

import pytest

from repro.fl.devices import (
    DEVICE_TIERS,
    DeviceProfile,
    assign_models_by_resources,
    sample_device_profiles,
)


class TestTiers:
    def test_tiers_ordered_by_memory(self):
        mems = [t.memory_mb for t in DEVICE_TIERS]
        assert mems == sorted(mems)

    def test_paper_models_map_onto_tiers(self):
        """At paper scale the three tiers hold exactly ResNet-20/32/44."""
        sizes = {"resnet-20": 1.10, "resnet-32": 1.88, "resnet-44": 2.66}
        assignment = assign_models_by_resources(list(DEVICE_TIERS), sizes)
        assert assignment == ["resnet-20", "resnet-32", "resnet-44"]


class TestSampling:
    def test_deterministic(self):
        a = sample_device_profiles(20, seed=0)
        b = sample_device_profiles(20, seed=0)
        assert [p.name for p in a] == [p.name for p in b]

    def test_tier_probs(self):
        profiles = sample_device_profiles(200, seed=0, tier_probs=(1.0, 0.0, 0.0))
        assert all(p.name == "iot-small" for p in profiles)

    def test_tier_probs_validation(self):
        with pytest.raises(ValueError):
            sample_device_profiles(5, tier_probs=(0.5, 0.5))

    def test_all_tiers_appear(self):
        profiles = sample_device_profiles(100, seed=0)
        assert {p.name for p in profiles} == {t.name for t in DEVICE_TIERS}


class TestAssignment:
    def test_largest_fitting_chosen(self):
        prof = DeviceProfile("x", memory_mb=2.0, compute_gflops=1.0)
        sizes = {"small": 0.5, "mid": 1.5, "large": 3.0}
        assert assign_models_by_resources([prof], sizes) == ["mid"]

    def test_no_fit_raises(self):
        prof = DeviceProfile("tiny", memory_mb=0.1, compute_gflops=0.1)
        with pytest.raises(ValueError):
            assign_models_by_resources([prof], {"big": 5.0})

    def test_empty_candidates(self):
        with pytest.raises(ValueError):
            assign_models_by_resources([DEVICE_TIERS[0]], {})
