"""FedMD and FedKD related-work baselines."""

import numpy as np
import pytest

from repro.core import FedKD, EnsembleModule
from repro.data.federated import build_federated_dataset
from repro.fl import FedAvg, FLConfig
from repro.fl.algorithms.fedmd import FedMD
from repro.nn.models import MLP
from repro.nn.tensor import Tensor


@pytest.fixture(scope="module")
def fed(tiny_world):
    return build_federated_dataset(
        tiny_world, num_clients=4, n_train=240, n_test=80, n_public=80, alpha=1.0, seed=0
    )


def mlp_fn():
    return MLP(3 * 8 * 8, num_classes=4, hidden=(16,), seed=1)


def big_fn():
    return MLP(3 * 8 * 8, num_classes=4, hidden=(64,), seed=2)


CFG = FLConfig(
    rounds=3, sample_ratio=1.0, local_epochs=1, batch_size=20, lr=0.05, seed=0,
    distill_epochs=1, distill_lr=1e-3,
)


class TestFedMD:
    def test_runs_and_learns(self, fed):
        h = FedMD(mlp_fn, fed, CFG).run()
        assert h.num_rounds == 3
        assert h.best_accuracy > 0.3  # committee on 4 classes

    def test_tiny_wire_cost(self, fed):
        """FedMD ships logits: N_public × classes floats per direction."""
        h = FedMD(mlp_fn, fed, CFG).run(rounds=1)
        logits_bytes = 80 * 4 * 4  # public × classes × fp32
        per_client = h.records[0].round_bytes / h.records[0].num_selected
        assert per_client < 3 * logits_bytes  # two payloads + headers
        # and below shipping the (tiny test) model; at paper scale the gap
        # is 1280 B vs megabytes
        assert per_client < mlp_fn().num_bytes() / 2

    def test_heterogeneous_clients(self, fed):
        fns = [mlp_fn, big_fn, mlp_fn, big_fn]
        algo = FedMD(mlp_fn, fed, CFG, local_model_fns=fns)
        h = algo.run(rounds=2)
        sizes = {m.num_parameters() for m in algo.client_models}
        assert len(sizes) == 2  # genuinely mixed fleet
        assert np.isfinite(h.accuracies).all()

    def test_builder_count_mismatch(self, fed):
        with pytest.raises(ValueError):
            FedMD(mlp_fn, fed, CFG, local_model_fns=[mlp_fn] * 2)

    def test_consensus_updates(self, fed):
        algo = FedMD(mlp_fn, fed, CFG)
        before = algo.consensus.copy()
        algo.run(rounds=1)
        assert not np.allclose(algo.consensus, before)

    def test_evaluation_is_committee(self, fed):
        algo = FedMD(mlp_fn, fed, CFG)
        algo.run(rounds=1)
        ens = algo.evaluation_model()
        assert isinstance(ens, EnsembleModule)
        x, _ = fed.server_test.arrays()
        out = ens(Tensor(x[:8]))
        assert out.shape == (8, 4)


class TestFedKD:
    def test_is_weight_average_fedkemf(self, fed):
        algo = FedKD(mlp_fn, fed, CFG.with_overrides(fusion="ensemble-distill"),
                     local_model_fns=big_fn)
        assert algo.cfg.fusion == "weight-average"  # pinned by the algorithm
        h = algo.run()
        assert h.algorithm == "FedKD"
        assert algo.last_distill_loss is None  # never distils

    def test_comm_cost_is_student_sized(self, fed):
        h_kd = FedKD(mlp_fn, fed, CFG, local_model_fns=big_fn).run(rounds=1)
        h_avg = FedAvg(big_fn, fed, CFG).run(rounds=1)
        assert h_kd.total_bytes < h_avg.total_bytes / 3

    def test_registered(self):
        from repro.fl.algorithms import ALGORITHM_REGISTRY

        assert "fedkd" in ALGORITHM_REGISTRY
        assert "fedmd" in ALGORITHM_REGISTRY


class TestEnsembleModule:
    def test_strategies(self, fed):
        members = [mlp_fn(), big_fn()]
        x, _ = fed.server_test.arrays()
        for strat in ("max", "mean", "vote"):
            out = EnsembleModule(members, strat)(Tensor(x[:4]))
            assert out.shape == (4, 4)

    def test_single_member_is_identity(self, fed):
        m = mlp_fn()
        x, _ = fed.server_test.arrays()
        ens = EnsembleModule([m], "mean")
        np.testing.assert_allclose(ens(Tensor(x[:4])).data, m(Tensor(x[:4])).data, atol=1e-6)

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            EnsembleModule([], "mean")

    def test_unknown_strategy_rejected(self):
        with pytest.raises(KeyError):
            EnsembleModule([mlp_fn()], "median")
