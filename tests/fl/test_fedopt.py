"""FedOpt family: server-side adaptive optimization."""

import numpy as np
import pytest

from repro.data.federated import build_federated_dataset
from repro.fl import FedAvg, FLConfig
from repro.fl.algorithms.fedopt import FedAdam, FedAvgM
from repro.nn.models import MLP


@pytest.fixture(scope="module")
def fed(tiny_world):
    return build_federated_dataset(
        tiny_world, num_clients=4, n_train=240, n_test=80, n_public=80, alpha=1.0, seed=0
    )


def mlp_fn():
    return MLP(3 * 8 * 8, num_classes=4, hidden=(16,), seed=1)


CFG = FLConfig(rounds=2, sample_ratio=0.5, local_epochs=1, batch_size=20, lr=0.05, seed=0)


class TestFedOptRuns:
    @pytest.mark.parametrize("cls", [FedAvgM, FedAdam])
    def test_runs_and_is_finite(self, cls, fed):
        h = cls(mlp_fn, fed, CFG).run()
        assert h.num_rounds == 2
        assert np.isfinite(h.accuracies).all()

    @pytest.mark.parametrize("cls", [FedAvgM, FedAdam])
    def test_same_wire_cost_as_fedavg(self, cls, fed):
        base = FedAvg(mlp_fn, fed, CFG).run(rounds=1).total_bytes
        opt = cls(mlp_fn, fed, CFG).run(rounds=1).total_bytes
        assert base == opt

    @pytest.mark.parametrize("cls", [FedAvgM, FedAdam])
    def test_learns(self, cls, fed):
        cfg = CFG.with_overrides(rounds=6, sample_ratio=1.0, local_epochs=2, server_lr=0.5)
        h = cls(mlp_fn, fed, cfg).run()
        assert h.best_accuracy > 0.45


class TestServerDynamics:
    def test_fedavgm_momentum_accumulates(self, fed):
        algo = FedAvgM(mlp_fn, fed, CFG.with_overrides(sample_ratio=1.0))
        algo.run(rounds=2)
        assert algo._velocity is not None
        assert any(np.abs(v).sum() > 0 for v in algo._velocity.values())

    def test_fedadam_moments_tracked(self, fed):
        algo = FedAdam(mlp_fn, fed, CFG.with_overrides(sample_ratio=1.0))
        algo.run(rounds=2)
        assert algo._t == 2
        assert any(np.abs(v).sum() > 0 for v in algo._v.values())

    def test_fedavgm_beta_zero_server_lr_one_equals_fedavg_params(self, fed):
        """β=0, η_s=1 collapses FedAvgM's parameter update to FedAvg's."""
        cfg = CFG.with_overrides(sample_ratio=1.0, rounds=1, server_lr=1.0)
        a = FedAvg(mlp_fn, fed, cfg)
        m = FedAvgM(mlp_fn, fed, cfg)
        m.beta = 0.0
        a.run()
        m.run()
        for (k1, p1), (k2, p2) in zip(
            a.global_model.named_parameters(), m.global_model.named_parameters()
        ):
            np.testing.assert_allclose(p1.data, p2.data, atol=1e-5, err_msg=k1)

    def test_registered(self):
        from repro.fl.algorithms import ALGORITHM_REGISTRY

        assert "fedavgm" in ALGORITHM_REGISTRY
        assert "fedadam" in ALGORITHM_REGISTRY
