"""Run history records."""

import numpy as np
import pytest

from repro.fl.history import RoundRecord, RunHistory


def record(i, acc=0.5, bytes_=100):
    return RoundRecord(
        round_idx=i,
        accuracy=acc,
        loss=1.0,
        cum_bytes=bytes_ * i,
        round_bytes=bytes_,
        num_selected=4,
    )


class TestHistory:
    def test_sequential_append_enforced(self):
        h = RunHistory("FedAvg", "resnet", 10, 0.4)
        h.append(record(1))
        with pytest.raises(ValueError):
            h.append(record(3))

    def test_series_properties(self):
        h = RunHistory("FedAvg", "resnet", 10, 0.4)
        for i, acc in enumerate([0.1, 0.4, 0.3], start=1):
            h.append(record(i, acc=acc))
        np.testing.assert_allclose(h.accuracies, [0.1, 0.4, 0.3])
        assert h.final_accuracy == 0.3
        assert h.best_accuracy == 0.4
        assert h.num_rounds == 3
        assert h.total_bytes == 300

    def test_bytes_at_round(self):
        h = RunHistory("FedAvg", "m", 4, 0.5)
        for i in range(1, 4):
            h.append(record(i))
        assert h.bytes_at_round(2) == 200
        with pytest.raises(IndexError):
            h.bytes_at_round(0)
        with pytest.raises(IndexError):
            h.bytes_at_round(4)

    def test_round_cost_per_client(self):
        h = RunHistory("FedAvg", "m", 4, 0.5)
        h.append(record(1, bytes_=4_000_000))  # 4 MB over 4 clients
        assert h.round_cost_per_client_mb() == 1.0

    def test_empty_history_guards(self):
        h = RunHistory("FedAvg", "m", 4, 0.5)
        assert h.total_bytes == 0
        assert h.round_cost_per_client_mb() == 0.0
        with pytest.raises(ValueError):
            _ = h.final_accuracy

    def test_local_accuracies_nan_padding(self):
        h = RunHistory("FedKEMF", "m", 4, 0.5)
        h.append(record(1))
        r2 = record(2)
        r2.local_accuracy = 0.7
        h.append(r2)
        locs = h.local_accuracies
        assert np.isnan(locs[0]) and locs[1] == 0.7

    def test_to_dict_round_trip_fields(self):
        h = RunHistory("FedAvg", "m", 4, 0.5, meta={"scale": "smoke"})
        h.append(record(1))
        d = h.to_dict()
        assert d["algorithm"] == "FedAvg"
        assert d["meta"]["scale"] == "smoke"
        assert d["rounds"][0]["round"] == 1
        import json

        json.dumps(d)  # must be JSON-serializable
