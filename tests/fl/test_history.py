"""Run history records."""

import numpy as np
import pytest

from repro.fl.history import RoundRecord, RunHistory
from repro.runtime.runtime import REJECTED_UPDATE, ordered_failure_counts


def record(i, acc=0.5, bytes_=100):
    return RoundRecord(
        round_idx=i,
        accuracy=acc,
        loss=1.0,
        cum_bytes=bytes_ * i,
        round_bytes=bytes_,
        num_selected=4,
    )


class TestHistory:
    def test_sequential_append_enforced(self):
        h = RunHistory("FedAvg", "resnet", 10, 0.4)
        h.append(record(1))
        with pytest.raises(ValueError):
            h.append(record(3))

    def test_series_properties(self):
        h = RunHistory("FedAvg", "resnet", 10, 0.4)
        for i, acc in enumerate([0.1, 0.4, 0.3], start=1):
            h.append(record(i, acc=acc))
        np.testing.assert_allclose(h.accuracies, [0.1, 0.4, 0.3])
        assert h.final_accuracy == 0.3
        assert h.best_accuracy == 0.4
        assert h.num_rounds == 3
        assert h.total_bytes == 300

    def test_bytes_at_round(self):
        h = RunHistory("FedAvg", "m", 4, 0.5)
        for i in range(1, 4):
            h.append(record(i))
        assert h.bytes_at_round(2) == 200
        with pytest.raises(IndexError):
            h.bytes_at_round(0)
        with pytest.raises(IndexError):
            h.bytes_at_round(4)

    def test_round_cost_per_client(self):
        h = RunHistory("FedAvg", "m", 4, 0.5)
        h.append(record(1, bytes_=4_000_000))  # 4 MB over 4 clients
        assert h.round_cost_per_client_mb() == 1.0

    def test_empty_history_guards(self):
        h = RunHistory("FedAvg", "m", 4, 0.5)
        assert h.total_bytes == 0
        assert h.round_cost_per_client_mb() == 0.0
        with pytest.raises(ValueError):
            _ = h.final_accuracy

    def test_local_accuracies_nan_padding(self):
        h = RunHistory("FedKEMF", "m", 4, 0.5)
        h.append(record(1))
        r2 = record(2)
        r2.local_accuracy = 0.7
        h.append(r2)
        locs = h.local_accuracies
        assert np.isnan(locs[0]) and locs[1] == 0.7

    def test_failure_taxonomy_ordering(self):
        """``rejected-update`` sits in the canonical taxonomy between
        ``uplink-lost`` and ``deadline``; unknown reasons trail, sorted."""
        counts = ordered_failure_counts(
            ["deadline", REJECTED_UPDATE, "zz-custom", "dropout",
             REJECTED_UPDATE, "uplink-lost", "aa-custom"]
        )
        assert list(counts) == [
            "dropout", "uplink-lost", REJECTED_UPDATE, "deadline",
            "aa-custom", "zz-custom",
        ]
        assert counts[REJECTED_UPDATE] == 2

    def test_total_failures_counts_rejections(self):
        h = RunHistory("FedAvg", "m", 4, 0.5)
        r1 = record(1)
        r1.failures = {0: REJECTED_UPDATE, 1: "dropout"}
        r1.num_failed = 2
        h.append(r1)
        r2 = record(2)
        r2.failures = {2: REJECTED_UPDATE}
        r2.num_failed = 1
        h.append(r2)
        assert h.total_failures() == {"dropout": 1, REJECTED_UPDATE: 2}

    def test_fingerprint_stable_with_rejections_mid_run(self):
        """A mid-run rejection is a *measurement* — it must change the
        fingerprint — and must survive the to_dict/from_dict round trip
        (the resume path) without perturbing it."""

        def build(with_rejection):
            h = RunHistory("FedAvg", "m", 4, 0.5)
            h.append(record(1))
            r2 = record(2)
            if with_rejection:
                r2.failures = {3: REJECTED_UPDATE}
                r2.num_failed = 1
            h.append(r2)
            h.append(record(3))
            return h

        clean = build(False)
        rejected = build(True)
        assert clean.fingerprint() != rejected.fingerprint()
        # resume leg: serialize, deserialize, hash — bit-identical
        revived = RunHistory.from_dict(rejected.to_dict())
        assert revived.fingerprint() == rejected.fingerprint()
        assert revived.records[1].failures == {3: REJECTED_UPDATE}
        # and the round trip is idempotent (client ids stay ints)
        again = RunHistory.from_dict(revived.to_dict())
        assert again.fingerprint() == rejected.fingerprint()

    def test_to_dict_round_trip_fields(self):
        h = RunHistory("FedAvg", "m", 4, 0.5, meta={"scale": "smoke"})
        h.append(record(1))
        d = h.to_dict()
        assert d["algorithm"] == "FedAvg"
        assert d["meta"]["scale"] == "smoke"
        assert d["rounds"][0]["round"] == 1
        import json

        json.dumps(d)  # must be JSON-serializable
