"""Streaming histories: JSONL sink fidelity, incremental fingerprints,
typed corruption errors.

Mirrors the checkpoint suite's fuzz style: every malformed sink file must
raise :class:`HistoryStreamError` — never a bare ``json``/``KeyError`` —
and a streamed run's fingerprint must be byte-for-byte the in-memory one.
"""

from __future__ import annotations

import json
import pickle

import numpy as np
import pytest

from repro.fl.history import HistoryStreamError, RoundRecord, RunHistory


def record(i, **over):
    base = dict(
        round_idx=i, accuracy=0.05 * i, loss=2.0 / i, cum_bytes=100 * i,
        round_bytes=100, num_selected=3, local_accuracy=None if i % 3 else 0.1 * i,
        wall_time=0.25 * i, num_sampled=4, num_failed=i % 2,
        failures={7: "dropout"} if i % 2 else {},
        sim_time_s=0.5, staleness={0: 3}, buffer_len=i % 4,
    )
    base.update(over)
    return RoundRecord(**base)


def make_pair(n=20, keep=4, path=None):
    """The same run appended twice: once in-memory, once streamed."""
    mem = RunHistory("FedAvg", "MLP", 40, 0.25, meta={"scale": "smoke"})
    streamed = RunHistory("FedAvg", "MLP", 40, 0.25, meta={"scale": "smoke"})
    if path is not None:
        streamed.stream_to(path, keep_records=keep)
    for i in range(1, n + 1):
        mem.append(record(i))
        streamed.append(record(i))
    return mem, streamed


class TestStreamingParity:
    def test_fingerprint_matches_in_memory(self, tmp_path):
        mem, streamed = make_pair(path=tmp_path / "h.jsonl")
        assert streamed.streaming
        assert streamed.fingerprint() == mem.fingerprint()

    def test_ram_stays_bounded(self, tmp_path):
        _, streamed = make_pair(n=50, keep=4, path=tmp_path / "h.jsonl")
        assert len(streamed.records) <= 4
        assert streamed.num_rounds == 50

    def test_series_read_through_the_sink(self, tmp_path):
        mem, streamed = make_pair(path=tmp_path / "h.jsonl")
        np.testing.assert_allclose(streamed.accuracies, mem.accuracies)
        np.testing.assert_allclose(streamed.losses, mem.losses)
        np.testing.assert_array_equal(streamed.cum_bytes, mem.cum_bytes)
        np.testing.assert_allclose(
            streamed.local_accuracies, mem.local_accuracies
        )
        np.testing.assert_array_equal(streamed.participation, mem.participation)
        assert streamed.total_failures() == mem.total_failures()
        assert streamed.staleness_histogram() == mem.staleness_histogram()
        assert streamed.bytes_at_round(7) == mem.bytes_at_round(7)
        assert streamed.to_dict() == mem.to_dict()

    def test_backlog_then_stream(self, tmp_path):
        """Attaching mid-run (the resume path) re-streams the backlog."""
        mem = RunHistory("FedAvg", "MLP", 40, 0.25)
        late = RunHistory("FedAvg", "MLP", 40, 0.25)
        for i in range(1, 6):
            mem.append(record(i))
            late.append(record(i))
        late.stream_to(tmp_path / "late.jsonl", keep_records=2)
        for i in range(6, 12):
            mem.append(record(i))
            late.append(record(i))
        assert late.fingerprint() == mem.fingerprint()
        assert late.num_rounds == 11

    def test_append_after_close_reopens(self, tmp_path):
        mem, streamed = make_pair(n=5, path=tmp_path / "h.jsonl")
        streamed.close_stream()
        assert streamed.streaming  # still in streaming mode
        mem.append(record(6))
        streamed.append(record(6))
        assert streamed.fingerprint() == mem.fingerprint()

    def test_pickle_detaches_with_full_records(self, tmp_path):
        mem, streamed = make_pair(n=15, keep=3, path=tmp_path / "h.jsonl")
        clone = pickle.loads(pickle.dumps(streamed))
        assert not clone.streaming
        assert len(clone.records) == 15
        assert clone.fingerprint() == mem.fingerprint()

    def test_empty_streamed_history_fingerprint(self, tmp_path):
        mem = RunHistory("FedAvg", "MLP", 4, 0.5)
        streamed = RunHistory("FedAvg", "MLP", 4, 0.5)
        streamed.stream_to(tmp_path / "e.jsonl")
        assert streamed.fingerprint() == mem.fingerprint()

    def test_keep_records_validation(self, tmp_path):
        with pytest.raises(ValueError):
            RunHistory("A", "M", 2, 0.5).stream_to(tmp_path / "x.jsonl", keep_records=0)

    def test_non_contiguous_append_rejected(self, tmp_path):
        h = RunHistory("A", "M", 2, 0.5)
        h.stream_to(tmp_path / "x.jsonl")
        h.append(record(1))
        with pytest.raises(ValueError):
            h.append(record(3))


class TestFromJsonl:
    def test_round_trips_through_from_dict(self, tmp_path):
        mem, streamed = make_pair(path=tmp_path / "h.jsonl")
        streamed.close_stream()
        back = RunHistory.from_jsonl(tmp_path / "h.jsonl")
        assert back.to_dict() == mem.to_dict()
        assert back.fingerprint() == mem.fingerprint()
        assert back.meta == {"scale": "smoke"}

    def test_missing_file(self, tmp_path):
        with pytest.raises(HistoryStreamError, match="cannot read"):
            RunHistory.from_jsonl(tmp_path / "nope.jsonl")

    def test_empty_file(self, tmp_path):
        p = tmp_path / "e.jsonl"
        p.write_text("")
        with pytest.raises(HistoryStreamError, match="empty"):
            RunHistory.from_jsonl(p)

    def test_truncated_tail_line(self, tmp_path):
        """A process killed mid-write leaves a line without its newline —
        a hard typed error, never silently-dropped rounds."""
        p = tmp_path / "h.jsonl"
        make_pair(n=6, path=p)[1].close_stream()
        data = p.read_text()
        p.write_text(data[:-7])  # chop through the last record
        with pytest.raises(HistoryStreamError, match="truncated"):
            RunHistory.from_jsonl(p)

    def test_corrupt_header(self, tmp_path):
        p = tmp_path / "h.jsonl"
        p.write_text("{not json\n")
        with pytest.raises(HistoryStreamError, match="corrupt header"):
            RunHistory.from_jsonl(p)

    def test_wrong_format_marker(self, tmp_path):
        p = tmp_path / "h.jsonl"
        p.write_text(json.dumps({"format": "something-else"}) + "\n")
        with pytest.raises(HistoryStreamError, match="format marker"):
            RunHistory.from_jsonl(p)

    def test_unsupported_version(self, tmp_path):
        p = tmp_path / "h.jsonl"
        make_pair(n=2, path=p)[1].close_stream()
        lines = p.read_text().splitlines()
        header = json.loads(lines[0])
        header["version"] = 99
        p.write_text("\n".join([json.dumps(header)] + lines[1:]) + "\n")
        with pytest.raises(HistoryStreamError, match="version"):
            RunHistory.from_jsonl(p)

    def test_corrupt_record_line_reports_position(self, tmp_path):
        p = tmp_path / "h.jsonl"
        make_pair(n=4, path=p)[1].close_stream()
        lines = p.read_text().splitlines()
        lines[2] = lines[2][: len(lines[2]) // 2]  # mangle record 2
        p.write_text("\n".join(lines) + "\n")
        with pytest.raises(HistoryStreamError, match="line 3"):
            RunHistory.from_jsonl(p)

    def test_non_object_record_line(self, tmp_path):
        p = tmp_path / "h.jsonl"
        make_pair(n=2, path=p)[1].close_stream()
        with p.open("a") as f:
            f.write("[1, 2, 3]\n")
        with pytest.raises(HistoryStreamError, match="not a round object"):
            RunHistory.from_jsonl(p)

    def test_invalid_payload_is_typed(self, tmp_path):
        p = tmp_path / "h.jsonl"
        make_pair(n=2, path=p)[1].close_stream()
        lines = p.read_text().splitlines()
        bad = json.loads(lines[1])
        del bad["accuracy"]
        lines[1] = json.dumps(bad)
        p.write_text("\n".join(lines) + "\n")
        with pytest.raises(HistoryStreamError, match="invalid history stream"):
            RunHistory.from_jsonl(p)

    def test_fuzz_single_byte_flips_never_raise_untyped(self, tmp_path):
        """Any single-byte corruption must surface as HistoryStreamError
        or load as a (different) valid history — never a bare json/KeyError
        (mirrors the checkpoint fuzz contract)."""
        p = tmp_path / "h.jsonl"
        make_pair(n=3, path=p)[1].close_stream()
        data = bytearray(p.read_bytes())
        rng = np.random.default_rng(0)
        for _ in range(40):
            pos = int(rng.integers(0, len(data)))
            corrupted = bytearray(data)
            corrupted[pos] ^= int(rng.integers(1, 256))
            p.write_bytes(bytes(corrupted))
            try:
                RunHistory.from_jsonl(p)
            except HistoryStreamError:
                pass
