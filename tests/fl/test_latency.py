"""Edge-system latency simulation."""

import numpy as np
import pytest

from repro.fl.devices import DEVICE_TIERS, DeviceProfile
from repro.fl.latency import (
    ClientTiming,
    estimate_client_time,
    estimate_round_time,
    simulate_epoch_times,
)
from repro.nn.models import MLP, resnet20, resnet44


SMALL = DEVICE_TIERS[0]
MID = DEVICE_TIERS[1]
LARGE = DEVICE_TIERS[2]


class TestClientTime:
    def test_components_positive(self):
        m = MLP(8, 4, hidden=(16,), seed=0)
        t = estimate_client_time(0, m, MID, steps=10, batch_input_shape=(16, 8), payload_bytes=1_000_000)
        assert t.compute_s > 0 and t.comm_s > 0
        assert t.total_s == t.compute_s + t.comm_s

    def test_faster_device_less_compute_time(self):
        m = resnet20(seed=0, width_mult=0.25)
        slow = estimate_client_time(0, m, SMALL, 5, (8, 3, 8, 8), 0)
        fast = estimate_client_time(0, m, LARGE, 5, (8, 3, 8, 8), 0)
        assert fast.compute_s < slow.compute_s / 4

    def test_comm_time_scales_with_payload(self):
        m = MLP(8, 4, seed=0)
        t1 = estimate_client_time(0, m, MID, 1, (1, 8), 1_000_000)
        t2 = estimate_client_time(0, m, MID, 1, (1, 8), 4_000_000)
        assert abs(t2.comm_s - 4 * t1.comm_s) < 1e-9

    def test_zero_steps_pure_comm(self):
        m = MLP(8, 4, seed=0)
        t = estimate_client_time(0, m, MID, 0, (1, 8), 1000)
        assert t.compute_s == 0 and t.comm_s > 0

    def test_negative_steps_rejected(self):
        with pytest.raises(ValueError):
            estimate_client_time(0, MLP(8, 4, seed=0), MID, -1, (1, 8), 0)

    def test_unknown_tier_uses_default_bandwidth(self):
        prof = DeviceProfile("custom", 4.0, 4.0)
        t = estimate_client_time(0, MLP(8, 4, seed=0), prof, 1, (1, 8), 10_000_000)
        assert t.comm_s == 10_000_000 * 8 / 10e6


class TestRoundTime:
    def test_straggler_is_max(self):
        models = [resnet44(seed=0, width_mult=0.25), resnet44(seed=1, width_mult=0.25)]
        profiles = [SMALL, LARGE]
        rt = estimate_round_time(models, profiles, [0, 1], [5, 5], (8, 3, 8, 8), [1000, 1000])
        assert rt.straggler_s == max(c.total_s for c in rt.clients)
        assert rt.utilization < 1.0

    def test_uniform_fleet_high_utilization(self):
        models = [resnet20(seed=s, width_mult=0.25) for s in range(3)]
        profiles = [MID] * 3
        rt = estimate_round_time(models, profiles, [0, 1, 2], [4, 4, 4], (8, 3, 8, 8), [100] * 3)
        assert rt.utilization > 0.99

    def test_empty_selection_rejected(self):
        with pytest.raises(ValueError):
            estimate_round_time([], [], [], [], (1, 8), [])

    def test_resource_matching_beats_uniform_big_model(self):
        """The paper's system argument: deploying ResNet-44 everywhere is
        gated by the iot tier; matching models to devices balances the
        round."""
        profiles = [SMALL, MID, LARGE]
        uniform = [resnet44(seed=s, width_mult=0.25) for s in range(3)]
        matched = [
            resnet20(seed=0, width_mult=0.25),
            resnet20(seed=1, width_mult=0.25),  # mid gets something light too
            resnet44(seed=2, width_mult=0.25),
        ]
        args = dict(
            selected=[0, 1, 2],
            steps_per_client=[4, 4, 4],
            batch_input_shape=(8, 3, 8, 8),
            payload_bytes_per_client=[1000] * 3,
        )
        rt_uniform = estimate_round_time(uniform, profiles, **args)
        rt_matched = estimate_round_time(matched, profiles, **args)
        assert rt_matched.straggler_s < rt_uniform.straggler_s
        assert rt_matched.utilization > rt_uniform.utilization


class TestEpochConvenience:
    def test_steps_from_shards(self):
        models = [MLP(8, 4, seed=s) for s in range(2)]
        profiles = [MID, MID]
        rt = simulate_epoch_times(
            models, profiles, samples_per_client=[100, 10], batch_size=20,
            local_epochs=2, batch_input_shape=(20, 8), payload_bytes=500,
        )
        # client 0: 5 batches × 2 epochs; client 1: 1 batch × 2 epochs
        assert rt.clients[0].compute_s > 4 * rt.clients[1].compute_s

    def test_misaligned_lists_rejected(self):
        with pytest.raises(ValueError):
            simulate_epoch_times([MLP(8, 4, seed=0)], [MID, MID], [10], 5, 1, (5, 8), 100)
