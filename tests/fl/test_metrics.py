"""Evaluation metrics and convergence queries."""

import numpy as np
import pytest

from repro.data.synthetic import make_blobs
from repro.fl.metrics import (
    average_local_accuracy,
    converged_round,
    evaluate_model,
    rounds_to_target,
)
from repro.nn.models import MLP


class TestEvaluateModel:
    def test_range_and_loss(self):
        ds = make_blobs(60, num_classes=4, dim=8, seed=0)
        m = MLP(8, 4, hidden=(8,), seed=0)
        acc, loss = evaluate_model(m, ds)
        assert 0.0 <= acc <= 1.0
        assert loss > 0

    def test_restores_training_mode(self):
        ds = make_blobs(20, num_classes=4, dim=8, seed=0)
        m = MLP(8, 4, seed=0)
        m.train()
        evaluate_model(m, ds)
        assert m.training
        m.eval()
        evaluate_model(m, ds)
        assert not m.training

    def test_batched_equals_full(self):
        ds = make_blobs(70, num_classes=4, dim=8, seed=0)
        m = MLP(8, 4, seed=0)
        acc_small, loss_small = evaluate_model(m, ds, batch_size=7)
        acc_full, loss_full = evaluate_model(m, ds, batch_size=1000)
        assert acc_small == acc_full
        assert abs(loss_small - loss_full) < 1e-4

    def test_perfect_classifier(self):
        """An oracle-initialized linear model must reach ~100% on separable blobs."""
        ds = make_blobs(100, num_classes=3, dim=6, separation=6.0, seed=0)
        m = MLP(6, 3, hidden=(), seed=0)
        cents = np.stack([ds.x[ds.y == k].mean(axis=0) for k in range(3)])
        lin = m.net[1]  # Flatten, Linear
        lin.weight.data[...] = 2 * cents
        lin.bias.data[...] = -(cents**2).sum(axis=1)
        acc, _ = evaluate_model(m, ds)
        assert acc > 0.95


class TestRoundsToTarget:
    def test_first_hit(self):
        assert rounds_to_target([0.1, 0.2, 0.5, 0.4], 0.45) == 3

    def test_hit_on_first_round(self):
        assert rounds_to_target([0.9], 0.5) == 1

    def test_never(self):
        assert rounds_to_target([0.1, 0.2], 0.5) is None

    def test_exact_boundary(self):
        assert rounds_to_target([0.5], 0.5) == 1


class TestConvergedRound:
    def test_plateau_detected(self):
        accs = [0.1, 0.3, 0.5, 0.51, 0.5, 0.51, 0.5, 0.505, 0.5, 0.51]
        conv = converged_round(accs, window=3, tol=0.02)
        assert conv <= 4

    def test_still_improving_returns_last(self):
        accs = list(np.linspace(0.1, 0.9, 12))
        assert converged_round(accs, window=3, tol=0.01) >= 10

    def test_short_series(self):
        assert converged_round([0.2, 0.3], window=5) == 2

    def test_empty_raises(self):
        with pytest.raises(ValueError):
            converged_round([])

    def test_monotone_flat(self):
        assert converged_round([0.5] * 10, window=3, tol=0.01) == 1


class TestFairnessReport:
    def test_fields_and_consistency(self):
        from repro.fl.metrics import client_fairness_report

        datasets = [make_blobs(30, num_classes=4, dim=8, seed=s) for s in range(12)]
        models = [MLP(8, 4, seed=0)] * 12
        rep = client_fairness_report(models, datasets)
        assert len(rep["per_client"]) == 12
        assert rep["min"] <= rep["worst_decile_mean"] <= rep["mean"] <= rep["max"]
        assert rep["std"] >= 0

    def test_validation(self):
        from repro.fl.metrics import client_fairness_report

        with pytest.raises(ValueError):
            client_fairness_report([], [])
        with pytest.raises(ValueError):
            client_fairness_report([MLP(8, 4, seed=0)], [])


class TestAverageLocal:
    def test_mean_of_per_client(self):
        ds_a = make_blobs(40, num_classes=4, dim=8, seed=0)
        ds_b = make_blobs(40, num_classes=4, dim=8, seed=1)
        m = MLP(8, 4, seed=0)
        avg = average_local_accuracy([m, m], [ds_a, ds_b])
        ia = evaluate_model(m, ds_a)[0]
        ib = evaluate_model(m, ds_b)[0]
        assert abs(avg - (ia + ib) / 2) < 1e-9

    def test_length_mismatch(self):
        with pytest.raises(ValueError):
            average_local_accuracy([MLP(8, 4, seed=0)], [])
