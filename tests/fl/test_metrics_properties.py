"""Property-based tests of the convergence/target queries."""

import numpy as np
from hypothesis import given, settings, strategies as st

from repro.fl.metrics import converged_round, rounds_to_target

acc_series = st.lists(st.floats(0.0, 1.0), min_size=1, max_size=40)


class TestRoundsToTargetProperties:
    @settings(max_examples=50, deadline=None)
    @given(accs=acc_series, target=st.floats(0.0, 1.0))
    def test_result_is_first_crossing(self, accs, target):
        r = rounds_to_target(accs, target)
        if r is None:
            assert all(a < target for a in accs)
        else:
            assert accs[r - 1] >= target
            assert all(a < target for a in accs[: r - 1])

    @settings(max_examples=50, deadline=None)
    @given(accs=acc_series, t1=st.floats(0.0, 1.0), t2=st.floats(0.0, 1.0))
    def test_monotone_in_target(self, accs, t1, t2):
        """A higher target can never be reached earlier."""
        lo, hi = min(t1, t2), max(t1, t2)
        r_lo = rounds_to_target(accs, lo)
        r_hi = rounds_to_target(accs, hi)
        if r_hi is not None:
            assert r_lo is not None and r_lo <= r_hi


class TestConvergedRoundProperties:
    @settings(max_examples=50, deadline=None)
    @given(accs=acc_series)
    def test_within_bounds(self, accs):
        c = converged_round(accs)
        assert 1 <= c <= len(accs)

    @settings(max_examples=50, deadline=None)
    @given(accs=acc_series, tol=st.floats(0.001, 0.2))
    def test_no_significant_gain_after_convergence(self, accs, tol):
        c = converged_round(accs, window=3, tol=tol)
        if c < len(accs):
            future_best = max(accs[c:])  # accs[c:] are rounds after round c
            assert future_best - accs[c - 1] <= tol + 1e-12

    @settings(max_examples=30, deadline=None)
    @given(base=st.floats(0.1, 0.9), n=st.integers(8, 30))
    def test_flat_series_converges_immediately(self, base, n):
        assert converged_round([base] * n, window=3, tol=0.01) == 1
