"""Algorithm-registry contract: every entry is constructible the same way.

The experiment runner instantiates algorithms generically; this pins the
constructor contract so a future algorithm can't silently break the CLI
and bench harness.
"""

import inspect

import pytest

from repro.fl.algorithms import ALGORITHM_REGISTRY
from repro.fl.algorithms.base import FLAlgorithm

# algorithms that accept (and require routing of) per-client local models
KNOWLEDGE_STYLE = {"fedkemf", "fedkd"}


class TestRegistryContract:
    def test_expected_algorithms_present(self):
        expected = {
            "fedavg", "fedprox", "fednova", "scaffold", "feddf",
            "fedmd", "fedkemf", "fedkd", "fedavgm", "fedadam",
        }
        assert expected <= set(ALGORITHM_REGISTRY.names())

    @pytest.mark.parametrize("name", [
        "fedavg", "fedprox", "fednova", "scaffold", "feddf",
        "fedmd", "fedkemf", "fedkd", "fedavgm", "fedadam",
    ])
    def test_is_flalgorithm_subclass(self, name):
        cls = ALGORITHM_REGISTRY.get(name)
        assert issubclass(cls, FLAlgorithm)

    @pytest.mark.parametrize("name", [
        "fedavg", "fedprox", "fednova", "scaffold", "feddf",
        "fedmd", "fedkemf", "fedkd", "fedavgm", "fedadam",
    ])
    def test_constructor_signature(self, name):
        """(model_fn, fed, config) positional prefix must be accepted."""
        cls = ALGORITHM_REGISTRY.get(name)
        params = list(inspect.signature(cls.__init__).parameters)
        assert params[1:4] == ["model_fn", "fed", "config"], f"{name}: {params}"

    @pytest.mark.parametrize("name", sorted(KNOWLEDGE_STYLE))
    def test_knowledge_style_accepts_local_models(self, name):
        cls = ALGORITHM_REGISTRY.get(name)
        params = inspect.signature(cls.__init__).parameters
        assert "local_model_fns" in params

    def test_display_names_unique(self):
        names = [ALGORITHM_REGISTRY.get(n).name for n in ALGORITHM_REGISTRY.names()]
        # aliases may repeat, but distinct classes must have distinct labels
        classes = {ALGORITHM_REGISTRY.get(n) for n in ALGORITHM_REGISTRY.names()}
        labels = [c.name for c in classes]
        assert len(labels) == len(set(labels))
