"""Mid-schedule checkpoint/resume: bit-identical replay.

Because every stochastic stream is pure in ``(seed, round, client)``, a run
checkpointed at round R and resumed must produce exactly the history and
final weights of the uninterrupted run — even with fault injection active.
These tests exercise the acceptance triple (FedAvg, SCAFFOLD, FedKEMF)
under a live ``--faults`` spec.
"""

from __future__ import annotations

import functools

import numpy as np
import pytest

from repro.core.fedkemf import FedKEMF
from repro.data.federated import build_federated_dataset
from repro.data.synthetic import SyntheticImageDataset, SyntheticSpec
from repro.fl.algorithms.base import FLConfig
from repro.fl.algorithms.fedavg import FedAvg
from repro.fl.algorithms.scaffold import Scaffold
from repro.fl.checkpoint import load_run_checkpoint, run_checkpoint_path
from repro.nn.models import build_model

ALGOS = {"fedavg": FedAvg, "scaffold": Scaffold, "fedkemf": FedKEMF}

FAULTS = "dropout=0.3,loss=0.1"
ROUNDS = 4
RESUME_AT = 2


@pytest.fixture(scope="module")
def fed():
    spec = SyntheticSpec(num_classes=4, channels=1, image_size=8, noise_std=0.25)
    world = SyntheticImageDataset(spec, seed=0)
    return build_federated_dataset(
        world, num_clients=6, n_train=240, n_test=60, n_public=60, alpha=0.5, seed=0
    )


@pytest.fixture(scope="module")
def model_fn():
    return functools.partial(
        build_model, "mlp", num_classes=4, in_channels=1, image_size=8,
        width_mult=0.25, seed=1,
    )


def make_cfg(**overrides) -> FLConfig:
    base = dict(
        rounds=ROUNDS, sample_ratio=0.5, local_epochs=1, batch_size=16,
        seed=1, faults=FAULTS, distill_epochs=1,
    )
    base.update(overrides)
    return FLConfig(**base)


def history_key(history) -> dict:
    """History comparison view: everything except wall-clock timings."""
    d = history.to_dict()
    for r in d["rounds"]:
        r.pop("wall_time")
    return d


def assert_same_weights(a, b) -> None:
    sa, sb = a.global_model.state_dict(), b.global_model.state_dict()
    assert list(sa) == list(sb)
    for k in sa:
        np.testing.assert_array_equal(sa[k], sb[k])


class TestResumeParity:
    @pytest.mark.parametrize("name", sorted(ALGOS))
    def test_bit_identical_under_faults(self, name, fed, model_fn, tmp_path):
        cls = ALGOS[name]
        straight = cls(model_fn, fed, make_cfg())
        full = straight.run()

        # first leg: stop after RESUME_AT rounds, leaving a checkpoint
        cls(model_fn, fed, make_cfg()).run(RESUME_AT, checkpoint_dir=tmp_path)
        # second leg: a fresh process-equivalent object resumes to the end
        resumed = cls(model_fn, fed, make_cfg())
        got = resumed.run(ROUNDS, checkpoint_dir=tmp_path, resume_from=True)

        assert history_key(got) == history_key(full)
        # the one-line form of the same comparison (reprolint RPL904's
        # sibling contract): timing drift must not reach the fingerprint
        assert got.fingerprint() == full.fingerprint()
        assert_same_weights(resumed, straight)

    def test_checkpoint_file_contents(self, fed, model_fn, tmp_path):
        algo = FedAvg(model_fn, fed, make_cfg())
        algo.run(RESUME_AT, checkpoint_dir=tmp_path, checkpoint_name="leg1")
        ckpt = load_run_checkpoint(run_checkpoint_path(tmp_path, "leg1"))
        assert ckpt.algorithm == "FedAvg"
        assert ckpt.next_round == RESUME_AT
        assert ckpt.fingerprint == algo.config_fingerprint()
        assert len(ckpt.history["rounds"]) == RESUME_AT

    def test_checkpoint_every_cadence(self, fed, model_fn, tmp_path):
        algo = FedAvg(model_fn, fed, make_cfg())
        algo.run(3, checkpoint_dir=tmp_path, checkpoint_every=2, checkpoint_name="c")
        # rounds 2 (cadence) and 3 (final) both wrote; the file holds the last
        ckpt = load_run_checkpoint(run_checkpoint_path(tmp_path, "c"))
        assert ckpt.next_round == 3

    def test_resume_of_completed_run_is_instant(self, fed, model_fn, tmp_path):
        full = FedAvg(model_fn, fed, make_cfg()).run(checkpoint_dir=tmp_path)
        again = FedAvg(model_fn, fed, make_cfg()).run(
            checkpoint_dir=tmp_path, resume_from=True
        )
        assert history_key(again) == history_key(full)

    def test_auto_resume_without_checkpoint_starts_fresh(self, fed, model_fn, tmp_path):
        history = FedAvg(model_fn, fed, make_cfg()).run(
            RESUME_AT, checkpoint_dir=tmp_path, resume_from=True
        )
        assert history.num_rounds == RESUME_AT


class TestBufferedResume:
    """Mid-buffer checkpoint/resume: the server buffer rides inside
    ``server_state()`` and a run killed with updates still pending must
    replay bit-identically (DESIGN.md §10)."""

    # Straggler-heavy, no dropout: a small buffer accumulates a genuine
    # backlog, so the checkpoint at RESUME_AT captures pending updates.
    BUFFERED = dict(
        aggregation="buffered", buffer_size=1, staleness_alpha=0.5,
        max_staleness=6, faults="slowdown=6,straggler=0.4",
        over_provision=False,
    )

    @pytest.mark.parametrize("name", ["fedavg", "fedkemf"])
    def test_mid_buffer_resume_bit_identical(self, name, fed, model_fn, tmp_path):
        cls = ALGOS[name]
        straight = cls(model_fn, fed, make_cfg(**self.BUFFERED))
        full = straight.run()

        leg1 = cls(model_fn, fed, make_cfg(**self.BUFFERED))
        leg1.run(RESUME_AT, checkpoint_dir=tmp_path)
        # the scenario is only interesting if the kill really was mid-buffer
        assert len(leg1._update_buffer) > 0

        resumed = cls(model_fn, fed, make_cfg(**self.BUFFERED))
        got = resumed.run(ROUNDS, checkpoint_dir=tmp_path, resume_from=True)
        assert history_key(got) == history_key(full)
        assert got.fingerprint() == full.fingerprint()
        assert_same_weights(resumed, straight)

    def test_checkpoint_carries_the_buffer(self, fed, model_fn, tmp_path):
        algo = FedAvg(model_fn, fed, make_cfg(**self.BUFFERED))
        algo.run(RESUME_AT, checkpoint_dir=tmp_path, checkpoint_name="buf")
        ckpt = load_run_checkpoint(run_checkpoint_path(tmp_path, "buf"))
        buffer = ckpt.server_state["_async_buffer"]
        assert buffer["version"] == RESUME_AT
        assert len(buffer["pending"]) == len(algo._update_buffer)
        assert len(buffer["pending"]) > 0

    def test_sync_checkpoint_has_no_buffer_key(self, fed, model_fn, tmp_path):
        FedAvg(model_fn, fed, make_cfg()).run(
            RESUME_AT, checkpoint_dir=tmp_path, checkpoint_name="plain"
        )
        ckpt = load_run_checkpoint(run_checkpoint_path(tmp_path, "plain"))
        assert "_async_buffer" not in ckpt.server_state


class TestResumeValidation:
    def test_fingerprint_mismatch_rejected(self, fed, model_fn, tmp_path):
        FedAvg(model_fn, fed, make_cfg()).run(RESUME_AT, checkpoint_dir=tmp_path)
        different = FedAvg(model_fn, fed, make_cfg(lr=0.05))
        with pytest.raises(ValueError, match="fingerprint"):
            different.run(ROUNDS, checkpoint_dir=tmp_path, resume_from=True)

    def test_algorithm_mismatch_rejected(self, fed, model_fn, tmp_path):
        FedAvg(model_fn, fed, make_cfg()).run(
            RESUME_AT, checkpoint_dir=tmp_path, checkpoint_name="run"
        )
        path = run_checkpoint_path(tmp_path, "run")
        with pytest.raises(ValueError, match="cannot resume"):
            Scaffold(model_fn, fed, make_cfg()).run(ROUNDS, resume_from=path)

    def test_executor_excluded_from_fingerprint(self, fed, model_fn):
        # parity across backends ⇒ a checkpoint may resume under a
        # different worker count / executor kind
        a = FedAvg(model_fn, fed, make_cfg())
        b = FedAvg(model_fn, fed, make_cfg(workers=4, executor="persistent"))
        assert a.config_fingerprint() == b.config_fingerprint()
        c = FedAvg(model_fn, fed, make_cfg(faults="dropout=0.5"))
        assert a.config_fingerprint() != c.config_fingerprint()

    def test_history_fingerprint_ignores_timing_and_meta(self, fed, model_fn):
        """Regression: wall-clock timings and free-form meta never leak
        into ``RunHistory.fingerprint()`` — a resumed run (whose per-round
        wall times inevitably differ) must hash identically."""
        history = FedAvg(model_fn, fed, make_cfg()).run(RESUME_AT)
        baseline = history.fingerprint()
        assert len(baseline) == 16 and int(baseline, 16) >= 0

        for r in history.records:
            r.wall_time += 123.456  # simulate a slower machine / resume leg
        history.meta["resumed_from"] = "round-2"
        assert history.fingerprint() == baseline

        history.records[-1].accuracy += 1e-9  # any measured axis must count
        assert history.fingerprint() != baseline

    def test_bad_arguments(self, fed, model_fn, tmp_path):
        algo = FedAvg(model_fn, fed, make_cfg())
        with pytest.raises(ValueError, match="checkpoint_every"):
            algo.run(checkpoint_dir=tmp_path, checkpoint_every=0)
        with pytest.raises(ValueError, match="checkpoint_dir"):
            algo.run(resume_from=True)
