"""Robust aggregation policies, the ``--defense`` grammar, the
server-boundary ``validate_update`` gate, and ensemble member filtering.

The load-bearing invariants: ``defense="mean"`` replays an undefended run's
fingerprint bitwise; malformed payloads surface as ``rejected-update`` —
never a crash, never silent aggregation."""

from __future__ import annotations

import functools
from collections import OrderedDict

import numpy as np
import pytest

from repro.data.federated import build_federated_dataset
from repro.data.synthetic import SyntheticImageDataset, SyntheticSpec
from repro.fl.algorithms import ALGORITHM_REGISTRY, FLConfig
from repro.fl.algorithms.fedavg import FedAvg
from repro.fl.robust import (
    DEFENSE_KINDS,
    AutoClipAggregator,
    CoordinateMedianAggregator,
    KrumAggregator,
    MeanAggregator,
    NormClipAggregator,
    RobustAggregator,
    TrimmedMeanAggregator,
    confidence_member_weights,
    default_defenses,
    parse_defense,
    validate_update,
)
from repro.nn.models import build_model
from repro.nn.serialization import average_states
from repro.runtime.runtime import FAILURE_REASONS, REJECTED_UPDATE


@pytest.fixture(scope="module")
def micro_fed():
    spec = SyntheticSpec(num_classes=4, channels=1, image_size=8, noise_std=0.25)
    world = SyntheticImageDataset(spec, seed=0)
    return build_federated_dataset(
        world, num_clients=6, n_train=240, n_test=60, n_public=60, alpha=0.5, seed=0
    )


@pytest.fixture(scope="module")
def micro_model_fn():
    return functools.partial(
        build_model, "mlp", num_classes=4, in_channels=1, image_size=8,
        width_mult=0.25, seed=1,
    )


def _states(values, key="w", dtype=np.float32):
    """One single-tensor state dict per scalar/array in ``values``."""
    return [OrderedDict({key: np.asarray(v, dtype=dtype)}) for v in values]


class TestParseDefense:
    def test_none_and_empty(self):
        assert parse_defense(None) is None
        assert parse_defense("") is None
        assert parse_defense("  ") is None

    def test_passthrough(self):
        agg = TrimmedMeanAggregator(0.3)
        assert parse_defense(agg) is agg

    @pytest.mark.parametrize("kind", DEFENSE_KINDS)
    def test_every_kind_parses(self, kind):
        agg = parse_defense(kind)
        assert isinstance(agg, RobustAggregator)
        assert agg.kind == kind

    def test_parameterized_forms(self):
        assert parse_defense("clip=2.5").tau == 2.5
        assert parse_defense("trimmed=0.3").beta == 0.3
        assert parse_defense("krum=2").f == 2

    def test_unknown_kind_lists_options(self):
        with pytest.raises(ValueError) as err:
            parse_defense("geomedian")
        msg = str(err.value)
        assert "geomedian" in msg
        for kind in DEFENSE_KINDS:
            assert kind in msg

    def test_parameterless_kinds_reject_parameters(self):
        with pytest.raises(ValueError, match="no parameter"):
            parse_defense("median=3")

    def test_bad_parameters_rejected(self):
        with pytest.raises(ValueError):
            parse_defense("trimmed=0.6")  # >= 0.5
        with pytest.raises(ValueError):
            parse_defense("clip=-1")
        with pytest.raises(ValueError):
            parse_defense("krum=-1")

    def test_default_defenses_cover_every_kind(self):
        assert sorted(d.kind for d in default_defenses()) == sorted(DEFENSE_KINDS)


class TestMeanAggregator:
    def test_bitwise_delegation_to_average_states(self):
        states = _states([[1.0, 2.0], [3.0, 5.0], [0.0, -1.0]])
        weights = [1.0, 2.0, 3.0]
        out = MeanAggregator().combine(states, weights)
        ref = average_states(list(states), weights)
        np.testing.assert_array_equal(out["w"], ref["w"])

    def test_does_not_filter_ensemble_members(self):
        base = [0.5, 0.5]
        stacked = np.zeros((2, 3, 4))
        assert MeanAggregator().member_filter(stacked, base) is base


class TestNormClip:
    def test_clip_factor(self):
        agg = NormClipAggregator(tau=2.0)
        assert agg._clip_factor(1.0, 2.0) == 1.0  # inside the ball
        assert agg._clip_factor(4.0, 2.0) == 0.5
        assert agg._clip_factor(0.0, 2.0) == 1.0
        assert agg._clip_factor(4.0, None) == 1.0

    def test_outlier_delta_is_shrunk(self):
        ref = _states([[0.0, 0.0]])[0]
        honest = _states([[1.0, 0.0]])[0]
        attacker = _states([[100.0, 0.0]])[0]
        out = NormClipAggregator(tau=1.0).combine([honest, attacker], None, reference=ref)
        # both deltas land on the unit ball: mean is (1 + 1) / 2 = 1
        np.testing.assert_allclose(out["w"], [1.0, 0.0], atol=1e-6)

    def test_validation(self):
        with pytest.raises(ValueError):
            NormClipAggregator(tau=0.0)


class TestAutoClip:
    def test_first_round_does_not_clip(self):
        agg = AutoClipAggregator()
        states = _states([[3.0], [5.0]])
        out = agg.combine(states, None, reference=_states([[0.0]])[0])
        np.testing.assert_allclose(out["w"], [4.0])
        assert agg.state()["tau"] == 4.0  # median norm, armed for round 2

    def test_second_round_clips_to_learned_median(self):
        ref = _states([[0.0]])[0]
        agg = AutoClipAggregator()
        agg.combine(_states([[1.0], [1.0]]), None, reference=ref)  # tau := 1
        out = agg.combine(_states([[10.0], [1.0]]), None, reference=ref)
        np.testing.assert_allclose(out["w"], [1.0])  # attacker clipped 10 → 1

    def test_state_round_trip(self):
        a = AutoClipAggregator()
        a.combine(_states([[2.0], [6.0]]), None, reference=_states([[0.0]])[0])
        b = AutoClipAggregator()
        b.load_state(a.state())
        assert b._tau == a._tau
        fresh = AutoClipAggregator()
        fresh.load_state({"tau": None})
        assert fresh._tau is None


class TestTrimmedMean:
    def test_drops_extremes(self):
        states = _states([[0.0], [1.0], [2.0], [3.0], [100.0]])
        out = TrimmedMeanAggregator(beta=0.2).combine(states, None)
        np.testing.assert_allclose(out["w"], [2.0])  # mean of {1, 2, 3}

    def test_zero_trim_is_plain_mean(self):
        states = _states([[1.0], [5.0]])
        out = TrimmedMeanAggregator(beta=0.0).combine(states, None)
        np.testing.assert_allclose(out["w"], [3.0])

    def test_degenerates_to_median(self):
        # m=2, beta=0.4 → k=0... use m=3, beta=0.4 → k=1, 2k<3 fine;
        # m=2 with beta 0.49 → k=0 → mean; force 2k>=m via small m:
        states = _states([[0.0], [1.0], [100.0], [101.0]])
        out = TrimmedMeanAggregator(beta=0.49).combine(states, None)
        np.testing.assert_allclose(out["w"], np.median([0.0, 1.0, 100.0, 101.0]))

    def test_validation(self):
        with pytest.raises(ValueError):
            TrimmedMeanAggregator(beta=0.5)
        with pytest.raises(ValueError):
            TrimmedMeanAggregator(beta=-0.1)

    def test_preserves_dtype(self):
        states = _states([[1.0], [2.0]], dtype=np.float32)
        assert TrimmedMeanAggregator(0.2).combine(states, None)["w"].dtype == np.float32


class TestCoordinateMedian:
    def test_per_coordinate(self):
        states = _states([[0.0, 10.0], [1.0, 20.0], [50.0, 30.0]])
        out = CoordinateMedianAggregator().combine(states, None)
        np.testing.assert_allclose(out["w"], [1.0, 20.0])


class TestKrum:
    def test_selects_inside_the_honest_cluster(self):
        honest = [[1.0, 1.0], [1.1, 0.9], [0.9, 1.1], [1.0, 0.95]]
        attacker = [[50.0, -50.0]]
        states = _states(honest + attacker)
        out = KrumAggregator(f=1).combine(states, None)
        # the winner is one of the honest members, never the attacker
        assert abs(float(out["w"][0])) < 2.0

    def test_single_member_passthrough(self):
        states = _states([[3.0, 4.0]])
        out = KrumAggregator(f=1).combine(states, None)
        np.testing.assert_array_equal(out["w"], [3.0, 4.0])
        out["w"][0] = 99.0  # returned copy must not alias the input
        assert states[0]["w"][0] == 3.0

    def test_tiny_cohort_fails_open(self):
        states = _states([[0.0], [1.0]])
        out = KrumAggregator(f=5).combine(states, None)
        assert float(out["w"][0]) in (0.0, 1.0)

    def test_validation(self):
        with pytest.raises(ValueError):
            KrumAggregator(f=-1)


def _payloads(arr, ref_arr=None, key="state"):
    p = {key: OrderedDict(w=np.asarray(arr, dtype=np.float32))}
    ref = None if ref_arr is None else OrderedDict(w=np.asarray(ref_arr, dtype=np.float32))
    return p, ref


class TestValidateUpdate:
    def test_clean_update_admitted(self):
        p, ref = _payloads([1.0, 2.0], [0.0, 0.0])
        assert validate_update(p, reference=ref) is None

    def test_nan_rejected(self):
        p, _ = _payloads([1.0, np.nan])
        assert "non-finite" in validate_update(p)

    def test_inf_rejected_in_any_payload(self):
        p, _ = _payloads([np.inf, 0.0], key="logits")
        assert "non-finite" in validate_update(p)

    def test_non_mapping_payload_rejected(self):
        assert "expected a state dict" in validate_update({"state": [1, 2, 3]})

    def test_object_dtype_rejected(self):
        p = {"state": OrderedDict(w=np.array([object()]))}
        assert "object-dtype" in validate_update(p)

    def test_key_mismatch_rejected(self):
        p = {"state": OrderedDict(w=np.zeros(2, dtype=np.float32))}
        ref = OrderedDict(
            w=np.zeros(2, dtype=np.float32), b=np.zeros(1, dtype=np.float32)
        )
        reason = validate_update(p, reference=ref)
        assert "key mismatch" in reason and "b" in reason

    def test_shape_mismatch_rejected(self):
        p, _ = _payloads([1.0, 2.0, 3.0])
        _, ref = _payloads(None, [0.0, 0.0])
        assert "shape" in validate_update(p, reference=ref)

    def test_float_width_is_lenient_int_is_not(self):
        ref = OrderedDict(w=np.zeros(2, dtype=np.float64))
        narrow = {"state": OrderedDict(w=np.zeros(2, dtype=np.float32))}
        assert validate_update(narrow, reference=ref) is None  # codec decode
        intp = {"state": OrderedDict(w=np.zeros(2, dtype=np.int64))}
        assert "dtype" in validate_update(intp, reference=ref)

    def test_norm_ceiling(self):
        p, ref = _payloads([3.0, 4.0], [0.0, 0.0])  # delta norm 5
        assert validate_update(p, reference=ref, norm_ceiling=10.0) is None
        reason = validate_update(p, reference=ref, norm_ceiling=4.0)
        assert "ceiling" in reason

    def test_delta_payloads_skip_the_signature_check(self):
        p = {"control": OrderedDict(c=np.ones(3, dtype=np.float32))}
        _, ref = _payloads(None, [0.0, 0.0])
        assert validate_update(p, reference=ref, norm_ceiling=0.1) is None


class TestConfidenceMemberWeights:
    def _stack(self, members, n=16, c=4, seed=0):
        rng = np.random.default_rng(seed)
        return np.stack([rng.normal(scale=s, size=(n, c)) for s in members])

    def test_fails_open_on_a_homogeneous_cohort(self):
        # identical members score identically (MAD = 0): nothing filtered,
        # the base weights come back by identity (bitwise unfiltered path)
        one = np.random.default_rng(0).normal(size=(16, 4))
        stacked = np.stack([one, one, one, one])
        base = [0.1, 0.2, 0.3, 0.4]
        assert confidence_member_weights(stacked, base) is base
        assert confidence_member_weights(stacked, None) is None

    def test_drops_saturated_outlier(self):
        stacked = self._stack([1.0, 1.0, 1.0, 1.0, 1.0])
        stacked[0] *= 1000.0  # saturated garbage: confidence ≈ 1
        w = confidence_member_weights(stacked)
        assert w is not None
        assert w[0] == 0.0 and np.all(w[1:] == 1.0)

    def test_drops_non_finite_member(self):
        stacked = self._stack([1.0, 1.0, 1.0])
        stacked[2, 0, 0] = np.nan
        w = confidence_member_weights(stacked, [1.0, 1.0, 1.0])
        assert w is not None and w[2] == 0.0

    def test_all_non_finite_returns_base(self):
        stacked = np.full((2, 4, 3), np.nan)
        base = [1.0, 1.0]
        assert confidence_member_weights(stacked, base) is base

    def test_composes_base_weights(self):
        stacked = self._stack([1.0, 1.0, 1.0, 1.0])
        stacked[1] *= 1000.0
        w = confidence_member_weights(stacked, [0.5, 0.5, 2.0, 2.0])
        np.testing.assert_allclose(w, [0.5, 0.0, 2.0, 2.0])


def _config(**overrides):
    base = dict(
        rounds=2,
        sample_ratio=0.5,
        local_epochs=1,
        batch_size=16,
        lr=0.05,
        seed=0,
        distill_epochs=1,
    )
    base.update(overrides)
    return FLConfig(**base)


class TestConfigWiring:
    def test_malformed_defense_rejected_at_config_time(self):
        with pytest.raises(ValueError, match="unknown defense"):
            _config(defense="frobnicate")
        with pytest.raises(ValueError):
            _config(norm_ceiling=0.0)

    def test_mean_defense_replays_undefended_fingerprint(
        self, micro_fed, micro_model_fn
    ):
        make = ALGORITHM_REGISTRY.get("fedavg")
        plain = make(micro_model_fn, micro_fed, _config())
        mean = make(micro_model_fn, micro_fed, _config(defense="mean"))
        hp, hm = plain.run(), mean.run()
        assert hp.fingerprint() == hm.fingerprint()
        sp, sm = plain.global_model.state_dict(), mean.global_model.state_dict()
        for k in sp:
            np.testing.assert_array_equal(sp[k], sm[k], err_msg=k)

    def test_defended_run_differs_under_attack(self, micro_fed, micro_model_fn):
        make = ALGORITHM_REGISTRY.get("fedavg")
        cfg = dict(faults="signflip=0.4")
        undefended = make(micro_model_fn, micro_fed, _config(**cfg))
        defended = make(micro_model_fn, micro_fed, _config(defense="median", **cfg))
        assert undefended.run().fingerprint() != defended.run().fingerprint()

    @pytest.mark.parametrize("name", ["fednova", "scaffold", "fedmd"])
    def test_defense_threads_through_every_family(
        self, name, micro_fed, micro_model_fn
    ):
        algo = ALGORITHM_REGISTRY.get(name)(
            micro_model_fn, micro_fed,
            _config(defense="trimmed=0.3", faults="signflip=0.3"),
        )
        history = algo.run()
        assert history.num_rounds == 2
        assert np.isfinite(history.final_accuracy)


class _NaNUplink(FedAvg):
    """Client 0 uploads a NaN-poisoned payload every round — the gate must
    reject it; the run must neither crash nor aggregate the poison."""

    def client_work(self, round_idx, cid, payload):
        update = super().client_work(round_idx, cid, payload)
        if cid == 0:
            for state in update.states.values():
                for k in state:
                    arr = np.asarray(state[k], dtype=np.float64)
                    arr[...] = np.nan
                    state[k] = arr
        return update


class TestRejectionGate:
    def test_rejected_update_in_taxonomy(self):
        assert REJECTED_UPDATE == "rejected-update"
        assert REJECTED_UPDATE in FAILURE_REASONS

    def test_poisoned_payload_is_rejected_not_aggregated(
        self, micro_fed, micro_model_fn
    ):
        algo = _NaNUplink(
            micro_model_fn, micro_fed, _config(rounds=3, sample_ratio=1.0)
        )
        history = algo.run()  # must not crash
        rejected = [
            cid
            for r in history.records
            for cid, reason in r.failures.items()
            if reason == REJECTED_UPDATE
        ]
        assert rejected == [0, 0, 0]
        # the poison never reached the global model
        for k, v in algo.global_model.state_dict().items():
            assert np.isfinite(v).all(), k
        assert history.total_failures()[REJECTED_UPDATE] == 3

    def test_norm_ceiling_rejects_scaled_attacker(self, micro_fed, micro_model_fn):
        """A ×1000 scaled update blows any sane ceiling; honest updates at
        this scale stay tiny, so only attackers are gated."""
        make = ALGORITHM_REGISTRY.get("fedavg")
        algo = make(
            micro_model_fn, micro_fed,
            _config(
                rounds=2, sample_ratio=1.0,
                faults="scale=1000@0.3", norm_ceiling=50.0,
            ),
        )
        history = algo.run()
        reasons = {
            reason for r in history.records for reason in r.failures.values()
        }
        assert reasons == {REJECTED_UPDATE}
        for r in history.records:
            assert r.num_selected + r.num_failed == r.num_sampled
