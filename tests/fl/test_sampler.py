"""Client sampling."""

import math

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.fl.sampler import ClientSampler, cohort_size


class TestSampler:
    def test_count_from_ratio(self):
        assert ClientSampler(10, 0.4, seed=0).per_round == 4
        assert ClientSampler(30, 0.4, seed=0).per_round == 12
        assert ClientSampler(3, 0.01, seed=0).per_round == 1  # at least one

    def test_validation(self):
        with pytest.raises(ValueError):
            ClientSampler(10, 0.0)
        with pytest.raises(ValueError):
            ClientSampler(10, 1.5)
        with pytest.raises(ValueError):
            ClientSampler(0, 0.5)

    def test_deterministic_per_round(self):
        a = ClientSampler(20, 0.3, seed=7)
        b = ClientSampler(20, 0.3, seed=7)
        for r in range(5):
            assert a.sample(r) == b.sample(r)

    def test_rounds_differ(self):
        s = ClientSampler(20, 0.3, seed=0)
        assert any(s.sample(0) != s.sample(r) for r in range(1, 5))

    def test_no_replacement_sorted(self):
        s = ClientSampler(10, 0.7, seed=0)
        ids = s.sample(0)
        assert ids == sorted(set(ids))
        assert all(0 <= i < 10 for i in ids)

    def test_full_participation(self):
        s = ClientSampler(6, 1.0, seed=0)
        assert s.sample(3) == list(range(6))

    @settings(max_examples=25, deadline=None)
    @given(n=st.integers(1, 50), ratio=st.floats(0.05, 1.0), r=st.integers(0, 100))
    def test_property_valid_samples(self, n, ratio, r):
        s = ClientSampler(n, ratio, seed=1)
        ids = s.sample(r)
        assert len(ids) == s.per_round
        assert len(set(ids)) == len(ids)
        assert all(0 <= i < n for i in ids)

    def test_coverage_over_many_rounds(self):
        """Every client should participate eventually."""
        s = ClientSampler(10, 0.3, seed=0)
        seen = set()
        for r in range(50):
            seen.update(s.sample(r))
        assert seen == set(range(10))


class TestCohortSize:
    """Floor-with-minimum semantics (not banker's rounding)."""

    def test_half_products_floor_down(self):
        # round() would give 2 for both (halves round to even); floor gives
        # the "at most ratio·n" reading consistently.
        assert cohort_size(10, 0.25) == 2
        assert cohort_size(10, 0.35) == 3
        assert cohort_size(6, 0.25) == 1  # 1.5 floors to 1, round() gives 2
        assert cohort_size(10, 0.45) == 4  # 4.5 floors to 4

    def test_ratio_to_zero_keeps_one_client(self):
        assert cohort_size(1_000_000, 1e-7) == 1
        assert cohort_size(3, 0.01) == 1

    def test_ratio_one_is_full_participation(self):
        for n in (1, 7, 100, 12345):
            assert cohort_size(n, 1.0) == n

    def test_float_representation_dip(self):
        # 0.7 * 30 == 20.999999999999996: the epsilon must absorb the dip
        assert cohort_size(30, 0.7) == 21
        assert cohort_size(50, 0.7) == 35

    def test_max_cohort_caps_regardless_of_population(self):
        assert cohort_size(1_000_000, 0.05) == 50_000
        assert cohort_size(1_000_000, 0.05, max_cohort=10_000) == 10_000
        assert cohort_size(10, 0.5, max_cohort=50_000) == 5  # cap above: no-op

    def test_never_exceeds_population(self):
        assert cohort_size(3, 1.0, max_cohort=100) == 3

    def test_validation(self):
        with pytest.raises(ValueError):
            cohort_size(10, 0.0)
        with pytest.raises(ValueError):
            cohort_size(0, 0.5)
        with pytest.raises(ValueError):
            cohort_size(10, 0.5, max_cohort=0)

    def test_sampler_uses_cohort_size(self):
        s = ClientSampler(30, 0.7, seed=0, max_cohort=5)
        assert s.per_round == 5
        assert len(s.sample(0)) == 5

    @settings(max_examples=50, deadline=None)
    @given(n=st.integers(1, 10_000), ratio=st.floats(1e-6, 1.0))
    def test_property_floor_bounds(self, n, ratio):
        k = cohort_size(n, ratio)
        assert 1 <= k <= n
        # never more than the true product rounded up (epsilon tolerance)
        assert k <= math.floor(n * ratio + 1e-9) or k == 1

    @settings(max_examples=30, deadline=None)
    @given(
        n=st.integers(1, 1_000),
        ratio_lo=st.floats(0.01, 0.5),
        ratio_hi=st.floats(0.5, 1.0),
    )
    def test_property_monotone_in_ratio(self, n, ratio_lo, ratio_hi):
        assert cohort_size(n, ratio_lo) <= cohort_size(n, ratio_hi)
