"""Client sampling."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.fl.sampler import ClientSampler


class TestSampler:
    def test_count_from_ratio(self):
        assert ClientSampler(10, 0.4, seed=0).per_round == 4
        assert ClientSampler(30, 0.4, seed=0).per_round == 12
        assert ClientSampler(3, 0.01, seed=0).per_round == 1  # at least one

    def test_validation(self):
        with pytest.raises(ValueError):
            ClientSampler(10, 0.0)
        with pytest.raises(ValueError):
            ClientSampler(10, 1.5)
        with pytest.raises(ValueError):
            ClientSampler(0, 0.5)

    def test_deterministic_per_round(self):
        a = ClientSampler(20, 0.3, seed=7)
        b = ClientSampler(20, 0.3, seed=7)
        for r in range(5):
            assert a.sample(r) == b.sample(r)

    def test_rounds_differ(self):
        s = ClientSampler(20, 0.3, seed=0)
        assert any(s.sample(0) != s.sample(r) for r in range(1, 5))

    def test_no_replacement_sorted(self):
        s = ClientSampler(10, 0.7, seed=0)
        ids = s.sample(0)
        assert ids == sorted(set(ids))
        assert all(0 <= i < 10 for i in ids)

    def test_full_participation(self):
        s = ClientSampler(6, 1.0, seed=0)
        assert s.sample(3) == list(range(6))

    @settings(max_examples=25, deadline=None)
    @given(n=st.integers(1, 50), ratio=st.floats(0.05, 1.0), r=st.integers(0, 100))
    def test_property_valid_samples(self, n, ratio, r):
        s = ClientSampler(n, ratio, seed=1)
        ids = s.sample(r)
        assert len(ids) == s.per_round
        assert len(set(ids)) == len(ids)
        assert all(0 <= i < n for i in ids)

    def test_coverage_over_many_rounds(self):
        """Every client should participate eventually."""
        s = ClientSampler(10, 0.3, seed=0)
        seen = set()
        for r in range(50):
            seen.update(s.sample(r))
        assert seen == set(range(10))
