"""Population-scale parity: lazy residency policies never change results.

One thousand clients, 5% sampled, faults and a trimmed-mean defense live —
the acceptance triple (FedAvg, SCAFFOLD, FedKEMF) must produce the *same*
``RunHistory.fingerprint()`` across every combination of data residency
(eager / lazy) and executor (serial / persistent / batched), plus through
a kill-and-resume whose per-client state store actually spilled to disk.
"""

from __future__ import annotations

import functools

import pytest

from repro.core.fedkemf import FedKEMF
from repro.data.federated import build_federated_dataset
from repro.data.lazy import LazyFederatedDataset
from repro.data.partition import IIDPartitioner
from repro.data.synthetic import SyntheticImageDataset, SyntheticSpec
from repro.fl.algorithms.base import FLConfig
from repro.fl.algorithms.fedavg import FedAvg
from repro.fl.algorithms.scaffold import Scaffold
from repro.nn.models import build_model

NUM_CLIENTS = 1_000
SAMPLE_RATIO = 0.05  # 50-client cohorts
ROUNDS = 2
FAULTS = "dropout=0.2,loss=0.1"
DEFENSE = "trimmed=0.2"

ALGOS = {"fedavg": FedAvg, "scaffold": Scaffold, "fedkemf": FedKEMF}
EXECUTORS = {
    "serial": dict(),
    "persistent": dict(workers=2, executor="persistent"),
    "batched": dict(executor="batched"),
}


def _world():
    spec = SyntheticSpec(num_classes=4, channels=1, image_size=8, noise_std=0.25)
    return SyntheticImageDataset(spec, seed=0)


@functools.lru_cache(maxsize=None)
def _fed(mode: str):
    builder = LazyFederatedDataset if mode == "lazy" else build_federated_dataset
    # two rows per client: population size dominates, every shard degenerate
    return builder(
        _world(), num_clients=NUM_CLIENTS, n_train=2 * NUM_CLIENTS,
        n_test=40, n_public=32, partitioner=IIDPartitioner(NUM_CLIENTS, seed=0),
        seed=0,
    )


def _model_fn():
    return functools.partial(
        build_model, "mlp", num_classes=4, in_channels=1, image_size=8,
        width_mult=0.25, seed=1,
    )


def _cfg(**overrides) -> FLConfig:
    base = dict(
        rounds=ROUNDS, sample_ratio=SAMPLE_RATIO, local_epochs=1, batch_size=2,
        lr=0.05, seed=1, faults=FAULTS, defense=DEFENSE, distill_epochs=1,
    )
    base.update(overrides)
    return FLConfig(**base)


def _algo(name: str, mode: str, **cfg_overrides):
    fed, cfg = _fed(mode), _cfg(**cfg_overrides)
    if name == "fedkemf":
        return FedKEMF(_model_fn(), fed, cfg, local_model_fns=_model_fn())
    return ALGOS[name](_model_fn(), fed, cfg)


@functools.lru_cache(maxsize=None)
def _fingerprint(name: str, mode: str, executor: str) -> str:
    return _algo(name, mode, **EXECUTORS[executor]).run().fingerprint()


class TestResidencyExecutorMatrix:
    @pytest.mark.parametrize("name", sorted(ALGOS))
    @pytest.mark.parametrize("mode", ["eager", "lazy"])
    @pytest.mark.parametrize("executor", sorted(EXECUTORS))
    def test_fingerprint_invariant(self, name, mode, executor):
        reference = _fingerprint(name, "eager", "serial")
        assert _fingerprint(name, mode, executor) == reference, (
            f"{name}: {mode}/{executor} diverged from eager/serial"
        )


class TestSpilledKillAndResume:
    def test_scaffold_resume_with_spilled_state(self, tmp_path):
        """Kill after round 1 with control variates spilling to disk; the
        resumed run must land on the uninterrupted fingerprint."""
        residency = 8  # far below the ~50-client cohort → guaranteed spill
        want = _algo("scaffold", "lazy", state_residency=residency).run().fingerprint()

        leg1 = _algo("scaffold", "lazy", state_residency=residency)
        leg1.run(1, checkpoint_dir=tmp_path)
        assert leg1.client_controls.spilled_count > 0, (
            "test premise broken: nothing spilled before the kill"
        )

        resumed = _algo("scaffold", "lazy", state_residency=residency)
        got = resumed.run(ROUNDS, checkpoint_dir=tmp_path, resume_from=True)
        assert got.fingerprint() == want
        assert resumed.client_controls.spilled_count > 0

    def test_fedkemf_resume_with_spilled_models(self, tmp_path):
        residency = 8
        want = _algo("fedkemf", "lazy", state_residency=residency).run().fingerprint()

        leg1 = _algo("fedkemf", "lazy", state_residency=residency)
        leg1.run(1, checkpoint_dir=tmp_path)
        assert leg1.local_models.spilled_count > 0

        resumed = _algo("fedkemf", "lazy", state_residency=residency)
        got = resumed.run(ROUNDS, checkpoint_dir=tmp_path, resume_from=True)
        assert got.fingerprint() == want


class TestStreamedRunParity:
    def test_streaming_history_does_not_change_the_run(self, tmp_path):
        plain = _fingerprint("fedavg", "lazy", "serial")
        streamed = _algo("fedavg", "lazy").run(
            history_stream=tmp_path / "run.jsonl", history_keep_records=2
        )
        assert streamed.fingerprint() == plain
        assert streamed.num_rounds == ROUNDS
        assert len(streamed.records) <= 2


class TestLazyResidencyDuringRun:
    def test_resident_shards_bounded_by_cohort(self):
        import math

        algo = _algo("fedavg", "lazy")
        algo.run()
        # the dropout fault over-provisions the sample: resident shards are
        # bounded by the provisioned cohort, never the population
        provisioned = math.ceil(algo.sampler.per_round / (1.0 - 0.2))
        assert len(algo.fed.resident_clients()) <= provisioned + 1
        assert len(algo.fed.resident_clients()) < NUM_CLIENTS // 10
