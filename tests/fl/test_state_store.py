"""Per-client state containers: LRU residency, disk spill, value fidelity.

The containers in ``repro.fl.state_store`` promise that eviction and
spilling are *invisible* — state round-trips by value, iteration orders
are sorted, and snapshots are self-contained. These tests pin those
promises directly; the end-to-end trajectory invariance is covered by
``tests/fl/test_scale_parity.py``.
"""

from __future__ import annotations

import functools
import pickle

import numpy as np
import pytest

from repro.fl.state_store import ClientModelBank, ClientStateStore, LazyFactoryBank
from repro.nn.models import MLP


def blob(cid, n=4):
    return {"w": np.full(n, float(cid)), "cid": cid}


def trainer_stub(cid):
    return {"cid": cid, "kind": "trainer"}


class TestClientStateStore:
    def test_dict_semantics_unbounded(self):
        s = ClientStateStore()
        s[3] = blob(3)
        s[1] = blob(1)
        assert len(s) == 2
        assert list(s) == [1, 3]  # sorted, not insertion order
        assert s[3]["cid"] == 3
        del s[1]
        assert 1 not in s
        with pytest.raises(KeyError):
            s[1]

    def test_lru_spill_and_promote(self, tmp_path):
        s = ClientStateStore(resident_limit=2, spill_dir=tmp_path)
        for cid in range(4):
            s[cid] = blob(cid)
        assert s.resident_count == 2
        assert s.spilled_count == 2
        assert sorted(tmp_path.glob("client-*.pkl")) != []
        # 0 was least recently used → spilled; reading promotes it back
        np.testing.assert_array_equal(s[0]["w"], blob(0)["w"])
        assert s.resident_count == 2  # promotion evicted someone else
        assert len(s) == 4
        assert list(s) == [0, 1, 2, 3]

    def test_peek_and_export_do_not_promote(self, tmp_path):
        s = ClientStateStore(resident_limit=1, spill_dir=tmp_path)
        for cid in range(3):
            s[cid] = blob(cid)
        spilled_before = s.spilled_count
        assert s.peek(0)["cid"] == 0
        out = s.export()
        assert s.spilled_count == spilled_before
        assert sorted(out) == [0, 1, 2]
        for cid in out:
            np.testing.assert_array_equal(out[cid]["w"], blob(cid)["w"])

    def test_fresh_write_supersedes_spill(self, tmp_path):
        s = ClientStateStore(resident_limit=1, spill_dir=tmp_path)
        s[0] = blob(0)
        s[1] = blob(1)  # spills 0
        s[0] = {"w": np.zeros(2), "cid": "new"}
        assert s[0]["cid"] == "new"

    def test_load_round_trip(self):
        a = ClientStateStore(resident_limit=2)
        for cid in range(5):
            a[cid] = blob(cid)
        b = ClientStateStore()
        b.load(a.export())
        assert list(b) == list(a)
        for cid in b:
            np.testing.assert_array_equal(b[cid]["w"], a.peek(cid)["w"])

    def test_pickle_is_self_contained(self):
        from pathlib import Path

        s = ClientStateStore(resident_limit=1)
        for cid in range(4):
            s[cid] = blob(cid)
        clone = pickle.loads(pickle.dumps(s))
        # the clone must not read the original's (temp-dir) spill files
        for p in Path(s._tmpdir.name).glob("client-*.pkl"):
            p.unlink()
        assert list(clone) == [0, 1, 2, 3]
        for cid in clone:
            np.testing.assert_array_equal(clone.peek(cid)["w"], blob(cid)["w"])

    def test_validation(self):
        with pytest.raises(ValueError):
            ClientStateStore(resident_limit=0)


class TestLazyFactoryBank:
    def test_lazy_construction_and_cache(self):
        calls = []

        def factory(cid):
            calls.append(cid)
            return {"cid": cid}

        bank = LazyFactoryBank(factory, 5)
        assert len(bank) == 5
        assert bank[2]["cid"] == 2
        assert bank[2] is bank[2]  # cached
        assert calls == [2]
        with pytest.raises(IndexError):
            bank[5]

    def test_retain_drops_and_rebuilds(self):
        bank = LazyFactoryBank(lambda cid: {"cid": cid}, 4)
        first = bank[1]
        bank[3]
        bank.retain([3])
        assert bank.cached_clients() == [3]
        rebuilt = bank[1]
        assert rebuilt == first and rebuilt is not first

    def test_pickle_drops_cache(self):
        bank = LazyFactoryBank(trainer_stub, 3)
        bank[0]
        clone = pickle.loads(pickle.dumps(bank))
        assert clone.cached_clients() == []
        assert len(clone) == 3


def make_model(cid):
    return MLP(4, 3, hidden=(5,), seed=100 + cid)


class TestClientModelBank:
    def fns(self, n=4):
        return [functools.partial(make_model, c) for c in range(n)]

    def test_untouched_is_fresh_init(self):
        bank = ClientModelBank(self.fns())
        want = make_model(2).state_dict()
        got = bank[2].state_dict()
        for k in want:
            np.testing.assert_array_equal(want[k], got[k])
        assert bank.touched == [2]

    def test_identity_stable_when_unbounded(self):
        bank = ClientModelBank(self.fns())
        assert bank[1] is bank[1]
        for m, again in zip(list(bank), list(bank)):
            assert m is again

    def test_park_and_restore_bitwise(self):
        bank = ClientModelBank(self.fns(), resident_limit=1)
        m0 = bank[0]
        trained = {k: v + 1.0 for k, v in m0.state_dict().items()}
        m0.load_state_dict(trained)
        bank[1]  # evicts 0 → parked
        assert bank.live_count == 1
        back = bank[0].state_dict()
        for k in trained:
            np.testing.assert_array_equal(back[k], trained[k])

    def test_spill_counter_under_pressure(self, tmp_path):
        bank = ClientModelBank(self.fns(6), resident_limit=1, spill_dir=tmp_path)
        for cid in range(6):
            bank[cid]
        assert bank.live_count == 1
        assert bank.spilled_count > 0
        assert bank.touched == list(range(6))

    def test_load_state_live_and_parked(self):
        bank = ClientModelBank(self.fns(), resident_limit=1)
        live = bank[0]
        new = {k: np.zeros_like(v) for k, v in live.state_dict().items()}
        bank.load_state(0, new)  # live path
        np.testing.assert_array_equal(
            next(iter(bank[0].state_dict().values())),
            next(iter(new.values())),
        )
        bank.load_state(3, make_model(0).state_dict())  # parked path
        assert 3 in bank.touched

    def test_export_import_dict_of_touched(self):
        bank = ClientModelBank(self.fns())
        bank[1].load_state_dict(
            {k: v * 2 for k, v in bank[1].state_dict().items()}
        )
        payload = bank.export_states()
        assert sorted(payload) == [1]
        other = ClientModelBank(self.fns())
        other.load_states(payload)
        got, want = other[1].state_dict(), bank[1].state_dict()
        for k in want:
            np.testing.assert_array_equal(got[k], want[k])

    def test_load_states_legacy_list(self):
        bank = ClientModelBank(self.fns())
        states = [make_model(9).state_dict() for _ in range(4)]
        bank.load_states(states)
        assert bank.touched == [0, 1, 2, 3]
        for cid in range(4):
            got = bank[cid].state_dict()
            for k in got:
                np.testing.assert_array_equal(got[k], states[cid][k])

    def test_load_states_reverts_missing_to_fresh(self):
        bank = ClientModelBank(self.fns())
        bank[0].load_state_dict(
            {k: v + 5 for k, v in bank[0].state_dict().items()}
        )
        bank.load_states({})
        fresh = make_model(0).state_dict()
        got = bank[0].state_dict()
        for k in fresh:
            np.testing.assert_array_equal(got[k], fresh[k])

    def test_pickle_round_trip(self):
        bank = ClientModelBank(self.fns(), resident_limit=2)
        bank[0].load_state_dict(
            {k: v + 1 for k, v in bank[0].state_dict().items()}
        )
        clone = pickle.loads(pickle.dumps(bank))
        got, want = clone[0].state_dict(), bank[0].state_dict()
        for k in want:
            np.testing.assert_array_equal(got[k], want[k])

    def test_validation(self):
        with pytest.raises(ValueError):
            ClientModelBank(self.fns(), resident_limit=0)
        with pytest.raises(IndexError):
            ClientModelBank(self.fns())[4]
