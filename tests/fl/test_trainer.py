"""Local trainer behavior."""

import numpy as np

from repro.data.synthetic import make_blobs
from repro.fl.metrics import evaluate_model
from repro.fl.trainer import LocalTrainer
from repro.nn.models import MLP


class TestLocalTrainer:
    def test_loss_decreases(self):
        ds = make_blobs(120, num_classes=4, dim=8, separation=4.0, seed=0)
        m = MLP(8, 4, hidden=(16,), seed=0)
        tr = LocalTrainer(ds, batch_size=16, lr=0.05, seed=0)
        s1 = tr.train(m, epochs=1)
        s2 = tr.train(m, epochs=3, round_idx=1)
        assert s2.mean_loss < s1.mean_loss

    def test_accuracy_improves(self):
        ds = make_blobs(150, num_classes=4, dim=8, separation=4.0, seed=0)
        te = make_blobs(60, num_classes=4, dim=8, separation=4.0, seed=1)
        m = MLP(8, 4, hidden=(16,), seed=0)
        before = evaluate_model(m, te)[0]
        LocalTrainer(ds, batch_size=16, lr=0.05, seed=0).train(m, epochs=5)
        after = evaluate_model(m, te)[0]
        assert after > before + 0.2

    def test_step_counting(self):
        ds = make_blobs(100, num_classes=4, dim=8, seed=0)
        m = MLP(8, 4, seed=0)
        stats = LocalTrainer(ds, batch_size=25, seed=0).train(m, epochs=2)
        assert stats.steps == 2 * 4  # 100/25 batches per epoch
        assert stats.epochs == 2
        assert stats.samples_seen == 200

    def test_grad_hook_called_per_step(self):
        ds = make_blobs(50, num_classes=4, dim=8, seed=0)
        m = MLP(8, 4, seed=0)
        calls = []
        LocalTrainer(ds, batch_size=25, seed=0).train(
            m, epochs=1, grad_hook=lambda model: calls.append(1)
        )
        assert len(calls) == 2

    def test_grad_hook_modifies_update(self):
        ds = make_blobs(50, num_classes=4, dim=8, seed=0)
        m1 = MLP(8, 4, seed=0)
        m2 = MLP(8, 4, seed=0)

        def zero_hook(model):
            for p in model.parameters():
                p.grad[...] = 0.0

        LocalTrainer(ds, batch_size=50, lr=0.1, momentum=0.0, seed=0).train(
            m1, epochs=1, grad_hook=zero_hook
        )
        # zeroed gradients → no movement
        for (_, p1), (_, p2) in zip(m1.named_parameters(), m2.named_parameters()):
            np.testing.assert_array_equal(p1.data, p2.data)

    def test_lr_override(self):
        ds = make_blobs(50, num_classes=4, dim=8, seed=0)
        m1 = MLP(8, 4, seed=0)
        m2 = MLP(8, 4, seed=0)
        LocalTrainer(ds, batch_size=50, lr=0.1, momentum=0.0, seed=0).train(m1, epochs=1, lr=1e-8)
        LocalTrainer(ds, batch_size=50, lr=0.1, momentum=0.0, seed=0).train(m2, epochs=1)
        d1 = np.abs(m1.net[1].weight.data - MLP(8, 4, seed=0).net[1].weight.data).max()
        d2 = np.abs(m2.net[1].weight.data - MLP(8, 4, seed=0).net[1].weight.data).max()
        assert d1 < d2

    def test_round_idx_changes_shuffle(self):
        ds = make_blobs(64, num_classes=4, dim=8, seed=0)
        tr = LocalTrainer(ds, batch_size=64, seed=0)
        l0 = tr.make_loader(0)
        l1 = tr.make_loader(1)
        (x0, _), = list(l0)
        (x1, _), = list(l1)
        assert not np.allclose(x0, x1)
