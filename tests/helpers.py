"""Shared test utilities: finite-difference gradient checking."""

from __future__ import annotations

from typing import Callable, Sequence

import numpy as np

from repro.nn.tensor import Tensor


def numeric_grad(
    f: Callable[[], Tensor],
    wrt: Tensor,
    eps: float = 1e-3,
) -> np.ndarray:
    """Central-difference gradient of scalar ``f()`` w.r.t. ``wrt.data``.

    ``f`` must recompute the forward pass from current tensor data each call
    (closures over the same Tensor objects).
    """
    base = wrt.data
    grad = np.zeros_like(base, dtype=np.float64)
    flat = base.reshape(-1)
    gflat = grad.reshape(-1)
    for i in range(flat.size):
        orig = flat[i]
        flat[i] = orig + eps
        hi = float(f().data)
        flat[i] = orig - eps
        lo = float(f().data)
        flat[i] = orig
        gflat[i] = (hi - lo) / (2 * eps)
    return grad


def check_grads(
    f: Callable[[], Tensor],
    params: Sequence[Tensor],
    atol: float = 2e-2,
    rtol: float = 2e-2,
) -> None:
    """Assert autograd gradients match central differences for all params.

    Tolerances are loose because the forward runs in float32.
    """
    for p in params:
        p.grad = None
    out = f()
    out.backward()
    for idx, p in enumerate(params):
        assert p.grad is not None, f"param {idx} got no gradient"
        num = numeric_grad(f, p)
        np.testing.assert_allclose(
            p.grad.astype(np.float64),
            num,
            atol=atol,
            rtol=rtol,
            err_msg=f"gradient mismatch for param {idx} (shape {p.shape})",
        )


def rng(seed: int = 0) -> np.random.Generator:
    return np.random.default_rng(seed)


def rand_t(shape, seed: int = 0, requires_grad: bool = True, scale: float = 1.0) -> Tensor:
    """Random float32 tensor helper."""
    g = np.random.default_rng(seed)
    return Tensor(
        (g.standard_normal(shape) * scale).astype(np.float32), requires_grad=requires_grad
    )
