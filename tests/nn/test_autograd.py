"""Autograd engine semantics: graph traversal, accumulation, grad mode."""

import numpy as np
import pytest

from repro.nn import no_grad, set_grad_enabled, is_grad_enabled
from repro.nn.tensor import Tensor

from tests.helpers import rand_t


class TestBackward:
    def test_diamond_graph_accumulates_once(self):
        # y = (a*2) + (a*3): dy/da = 5 exactly (each path visited once)
        a = Tensor(np.array([1.0], dtype=np.float32), requires_grad=True)
        y = a * 2 + a * 3
        y.backward()
        np.testing.assert_allclose(a.grad, [5.0])

    def test_deep_chain_no_recursion_error(self):
        a = Tensor(np.array([1.0], dtype=np.float32), requires_grad=True)
        x = a
        for _ in range(3000):
            x = x + 0.001
        x.backward()
        np.testing.assert_allclose(a.grad, [1.0])

    def test_repeated_backward_accumulates_into_grad(self):
        a = rand_t((3,), seed=1)
        (a * 2).sum().backward()
        first = a.grad.copy()
        (a * 2).sum().backward()
        np.testing.assert_allclose(a.grad, 2 * first)

    def test_non_scalar_requires_explicit_grad(self):
        a = rand_t((3,), seed=2)
        with pytest.raises(RuntimeError):
            (a * 2).backward()

    def test_explicit_grad_shape_checked(self):
        a = rand_t((3,), seed=3)
        with pytest.raises(RuntimeError):
            (a * 2).backward(np.ones(4))

    def test_explicit_grad_used(self):
        a = rand_t((3,), seed=4)
        (a * 1).backward(np.array([1.0, 2.0, 3.0], dtype=np.float32))
        np.testing.assert_allclose(a.grad, [1.0, 2.0, 3.0])

    def test_intermediate_grad_not_kept_by_default(self):
        a = rand_t((3,), seed=5)
        mid = a * 2
        mid.sum().backward()
        assert mid.grad is None
        assert a.grad is not None

    def test_retain_grad(self):
        a = rand_t((3,), seed=6)
        mid = (a * 2).retain_grad()
        mid.sum().backward()
        np.testing.assert_allclose(mid.grad, np.ones(3))

    def test_grad_not_propagated_into_non_grad_leaves(self):
        a = rand_t((3,), seed=7)
        b = rand_t((3,), seed=8, requires_grad=False)
        (a * b).sum().backward()
        assert a.grad is not None and b.grad is None

    def test_zero_grad(self):
        a = rand_t((3,), seed=9)
        (a * 2).sum().backward()
        a.zero_grad()
        assert a.grad is None


class TestGradMode:
    def test_nesting_restores(self):
        assert is_grad_enabled()
        with no_grad():
            assert not is_grad_enabled()
            with set_grad_enabled(True):
                assert is_grad_enabled()
            assert not is_grad_enabled()
        assert is_grad_enabled()

    def test_restored_on_exception(self):
        try:
            with no_grad():
                raise ValueError("boom")
        except ValueError:
            pass
        assert is_grad_enabled()

    def test_mixed_graph_cut_by_no_grad(self):
        a = rand_t((2,), seed=10)
        with no_grad():
            frozen = a * 3  # constant w.r.t. autograd
        out = (Tensor(frozen.data) * a).sum()
        out.backward()
        np.testing.assert_allclose(a.grad, frozen.data)
