"""Bit-identity of the stacked (K-leading-axis) training path.

The contract behind ``--executor batched``: every per-client slice of a
stacked program reproduces the serial kernels *bitwise* — same forward
bits, same gradient bits, same SGD trajectory. These tests pin that at the
op level (linear/conv/bn/pools/losses) and end-to-end (full training steps
on every supported architecture family, momentum + weight decay on).
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.nn import functional as F
from repro.nn.batched import (
    StackedModel,
    batch_norm2d_k,
    batched_enabled,
    build_stacked,
    conv2d_k,
    cross_entropy_k,
    kl_div_with_logits_k,
    linear_k,
    max_pool2d_k,
)
from repro.nn.models.factory import build_model
from repro.nn.module import Module, Parameter
from repro.nn.optim.sgd import SGD
from repro.nn.tensor import Tensor

K = 3


def _param(rng, shape):
    return Parameter(rng.standard_normal(shape).astype(np.float32))


class TestStackedOps:
    """Per-slice forward/backward bits match the serial kernels."""

    def test_linear_k(self):
        rng = np.random.default_rng(0)
        x = Tensor(rng.standard_normal((K, 5, 7)).astype(np.float32), requires_grad=True)
        w = _param(rng, (K, 4, 7))
        b = _param(rng, (K, 4))
        out = linear_k(x, w, b)
        out.backward(np.ones_like(out.data))
        for i in range(K):
            xi = Tensor(x.data[i], requires_grad=True)
            wi = Parameter(w.data[i])
            bi = Parameter(b.data[i])
            ref = F.linear(xi, wi, bi)
            ref.backward(np.ones_like(ref.data))
            np.testing.assert_array_equal(out.data[i], ref.data)
            np.testing.assert_array_equal(x.grad[i], xi.grad)
            np.testing.assert_array_equal(w.grad[i], wi.grad)
            np.testing.assert_array_equal(b.grad[i], bi.grad)

    def test_conv2d_k(self):
        rng = np.random.default_rng(1)
        x = Tensor(rng.standard_normal((K, 2, 3, 8, 8)).astype(np.float32), requires_grad=True)
        w = _param(rng, (K, 4, 3, 3, 3))
        b = _param(rng, (K, 4))
        out = conv2d_k(x, w, b, stride=1, padding=1)
        g = rng.standard_normal(out.data.shape).astype(np.float32)
        out.backward(g)
        for i in range(K):
            xi = Tensor(x.data[i], requires_grad=True)
            wi = Parameter(w.data[i])
            bi = Parameter(b.data[i])
            ref = F.conv2d(xi, wi, bi, stride=1, padding=1)
            ref.backward(g[i])
            np.testing.assert_array_equal(out.data[i], ref.data)
            np.testing.assert_array_equal(x.grad[i], xi.grad)
            np.testing.assert_array_equal(w.grad[i], wi.grad)
            np.testing.assert_array_equal(b.grad[i], bi.grad)

    @pytest.mark.parametrize("training", [True, False])
    def test_batch_norm2d_k(self, training):
        rng = np.random.default_rng(2)
        x = Tensor(rng.standard_normal((K, 4, 3, 5, 5)).astype(np.float32), requires_grad=True)
        gamma = _param(rng, (K, 3))
        beta = _param(rng, (K, 3))
        rm = rng.standard_normal((K, 3)).astype(np.float32)
        rv = np.abs(rng.standard_normal((K, 3))).astype(np.float32) + 0.5
        rm_ref, rv_ref = rm.copy(), rv.copy()
        out = batch_norm2d_k(x, gamma, beta, rm, rv, training=training)
        g = rng.standard_normal(out.data.shape).astype(np.float32)
        out.backward(g)
        for i in range(K):
            xi = Tensor(x.data[i], requires_grad=True)
            gi = Parameter(gamma.data[i])
            bi = Parameter(beta.data[i])
            rmi, rvi = rm_ref[i].copy(), rv_ref[i].copy()
            ref = F.batch_norm2d(xi, gi, bi, rmi, rvi, training=training)
            ref.backward(g[i])
            np.testing.assert_array_equal(out.data[i], ref.data)
            np.testing.assert_array_equal(x.grad[i], xi.grad)
            np.testing.assert_array_equal(gamma.grad[i], gi.grad)
            np.testing.assert_array_equal(beta.grad[i], bi.grad)
            np.testing.assert_array_equal(rm[i], rmi)  # EMA updated identically
            np.testing.assert_array_equal(rv[i], rvi)

    def test_max_pool2d_k(self):
        rng = np.random.default_rng(3)
        x = Tensor(rng.standard_normal((K, 2, 3, 8, 8)).astype(np.float32), requires_grad=True)
        out = max_pool2d_k(x, 2)
        g = rng.standard_normal(out.data.shape).astype(np.float32)
        out.backward(g)
        for i in range(K):
            xi = Tensor(x.data[i], requires_grad=True)
            ref = F.max_pool2d(xi, 2)
            ref.backward(g[i])
            np.testing.assert_array_equal(out.data[i], ref.data)
            np.testing.assert_array_equal(x.grad[i], xi.grad)

    def test_cross_entropy_k(self):
        rng = np.random.default_rng(4)
        logits = Tensor(rng.standard_normal((K, 6, 5)).astype(np.float32), requires_grad=True)
        labels = rng.integers(0, 5, size=(K, 6))
        losses = cross_entropy_k(logits, labels)
        losses.backward(np.full(K, 0.75, dtype=np.float32))
        for i in range(K):
            li = Tensor(logits.data[i], requires_grad=True)
            ref = F.cross_entropy(li, labels[i])
            ref.backward(np.float32(0.75))
            assert float(losses.data[i]) == ref.item()
            np.testing.assert_array_equal(logits.grad[i], li.grad)

    def test_kl_div_with_logits_k(self):
        rng = np.random.default_rng(5)
        teacher = Tensor(rng.standard_normal((K, 6, 5)).astype(np.float32))
        student = Tensor(rng.standard_normal((K, 6, 5)).astype(np.float32), requires_grad=True)
        kl = kl_div_with_logits_k(teacher, student)
        kl.backward(np.ones(K, dtype=np.float32))
        for i in range(K):
            si = Tensor(student.data[i], requires_grad=True)
            ref = F.kl_div_with_logits(Tensor(teacher.data[i]), si)
            ref.backward(np.float32(1.0))
            assert float(kl.data[i]) == ref.item()
            np.testing.assert_array_equal(student.grad[i], si.grad)


MODEL_CASES = {
    "mlp": (dict(num_classes=4, in_channels=1, image_size=8, width_mult=0.25), (1, 8, 8)),
    "cnn-2": (dict(num_classes=4, in_channels=1, image_size=8, width_mult=0.25), (1, 8, 8)),
    "resnet-20": (dict(num_classes=4, in_channels=3, image_size=8, width_mult=0.25), (3, 8, 8)),
    "vgg-11": (dict(num_classes=4, in_channels=3, image_size=8, width_mult=0.125), (3, 8, 8)),
}


def _train_pair(name, kw, shape, steps=2, kl_teacher=None):
    """Train K clients serially and stacked; return (serial, stacked) states
    and per-step loss bits."""
    rng = np.random.default_rng(0)
    classes = kw["num_classes"]
    states = [build_model(name, seed=10 + i, **kw).state_dict() for i in range(K)]
    xs = rng.standard_normal((steps, K, 4) + shape).astype(np.float32)
    ys = rng.integers(0, classes, size=(steps, K, 4))

    serial_states, serial_losses = [], []
    for i in range(K):
        m = build_model(name, seed=0, **kw)
        m.load_state_dict(states[i])
        opt = SGD(m.parameters(), lr=0.05, momentum=0.9, weight_decay=1e-4)
        m.train()
        ls = []
        for t in range(steps):
            m.zero_grad()
            logits = m(Tensor(xs[t, i]))
            loss = F.cross_entropy(logits, ys[t, i])
            if kl_teacher is not None:
                loss = loss + 0.5 * F.kl_div_with_logits(Tensor(kl_teacher[t, i]), logits)
            loss.backward()
            opt.step()
            ls.append(loss.item())
        serial_states.append(m.state_dict())
        serial_losses.append(ls)

    sm = build_stacked(build_model(name, seed=7, **kw), K)
    assert sm is not None
    sm.load_client_states(states)
    opt = SGD(sm.parameters(), lr=0.05, momentum=0.9, weight_decay=1e-4)
    sm.train()
    ones = np.ones(K, dtype=np.float32)
    stacked_losses = [[] for _ in range(K)]
    for t in range(steps):
        sm.zero_grad()
        logits = sm(Tensor(xs[t]))
        loss = cross_entropy_k(logits, ys[t])
        if kl_teacher is not None:
            loss = loss + 0.5 * kl_div_with_logits_k(Tensor(kl_teacher[t]), logits)
        loss.backward(ones)
        opt.step()
        for i in range(K):
            stacked_losses[i].append(float(loss.data[i]))
    return serial_states, serial_losses, sm, stacked_losses


class TestStackedTrainingBitIdentity:
    @pytest.mark.parametrize("name", sorted(MODEL_CASES))
    def test_model_family(self, name):
        kw, shape = MODEL_CASES[name]
        serial_states, serial_losses, sm, stacked_losses = _train_pair(name, kw, shape)
        assert serial_losses == stacked_losses
        for i in range(K):
            got = sm.client_state(i)
            for key, want in serial_states[i].items():
                np.testing.assert_array_equal(want, got[key], err_msg=key)

    def test_composite_ce_plus_kl_loss(self):
        # The DML-shaped loss: CE + λ·KL against a fixed teacher.
        kw, shape = MODEL_CASES["resnet-20"]
        teacher = np.random.default_rng(99).standard_normal((2, K, 4, 4)).astype(np.float32)
        serial_states, serial_losses, sm, stacked_losses = _train_pair(
            "resnet-20", kw, shape, kl_teacher=teacher
        )
        assert serial_losses == stacked_losses
        for i in range(K):
            got = sm.client_state(i)
            for key, want in serial_states[i].items():
                np.testing.assert_array_equal(want, got[key], err_msg=key)


class TestBuildStacked:
    def test_state_roundtrip(self):
        kw, _ = MODEL_CASES["cnn-2"]
        states = [build_model("cnn-2", seed=20 + i, **kw).state_dict() for i in range(K)]
        sm = build_stacked(build_model("cnn-2", seed=0, **kw), K)
        sm.load_client_states(states)
        for i in range(K):
            got = sm.client_state(i)
            assert list(got) == list(states[i])
            for key in got:
                np.testing.assert_array_equal(got[key], states[i][key], err_msg=key)

    def test_unsupported_module_returns_none(self):
        class Exotic(Module):
            def __init__(self):
                super().__init__()
                self.w = Parameter(np.zeros((2, 2), dtype=np.float32))

            def forward(self, x):  # pragma: no cover - never traced
                return x

        assert build_stacked(Exotic(), K) is None

    def test_active_dropout_returns_none(self):
        # Stochastic layers have no lockstep equivalent; the builder must
        # decline so the executor falls back to the serial oracle.
        from repro.nn.models.vgg import VGG

        model = VGG(
            "vgg11", num_classes=4, in_channels=3, image_size=8,
            width_mult=0.125, dropout=0.5, seed=0,
        )
        assert build_stacked(model, K) is None

    def test_eval_matches_serial(self):
        kw, shape = MODEL_CASES["resnet-20"]
        states = [build_model("resnet-20", seed=30 + i, **kw).state_dict() for i in range(K)]
        sm = build_stacked(build_model("resnet-20", seed=0, **kw), K)
        sm.load_client_states(states)
        sm.eval()
        x = np.random.default_rng(6).standard_normal((K, 4) + shape).astype(np.float32)
        out = sm(Tensor(x))
        for i in range(K):
            m = build_model("resnet-20", seed=0, **kw)
            m.load_state_dict(states[i])
            m.eval()
            np.testing.assert_array_equal(out.data[i], m(Tensor(x[i])).data)

    def test_isolated_stack(self):
        # The stack owns copies: training it must not touch the templates.
        kw, _ = MODEL_CASES["mlp"]
        template = build_model("mlp", seed=0, **kw)
        before = {k: v.copy() for k, v in template.state_dict().items()}
        sm = build_stacked(template, K)
        states = [build_model("mlp", seed=40 + i, **kw).state_dict() for i in range(K)]
        sm.load_client_states(states)
        for p in sm.parameters():
            p.data += 1.0
        after = template.state_dict()
        for key in before:
            np.testing.assert_array_equal(before[key], after[key], err_msg=key)


class TestEscapeHatch:
    def test_batched_enabled_env(self, monkeypatch):
        monkeypatch.delenv("REPRO_BATCHED", raising=False)
        assert batched_enabled()
        monkeypatch.setenv("REPRO_BATCHED", "0")
        assert not batched_enabled()
        monkeypatch.setenv("REPRO_BATCHED", "1")
        assert batched_enabled()


class TestStackedModelContract:
    def test_zero_grad_and_parameters(self):
        kw, _ = MODEL_CASES["mlp"]
        sm = build_stacked(build_model("mlp", seed=0, **kw), K)
        assert isinstance(sm, StackedModel)
        assert all(p.data.shape[0] == K for p in sm.parameters())
        x = Tensor(np.zeros((K, 2, 1, 8, 8), dtype=np.float32))
        loss = cross_entropy_k(sm(x), np.zeros((K, 2), dtype=np.int64))
        loss.backward(np.ones(K, dtype=np.float32))
        assert all(p.grad is not None for p in sm.parameters())
        sm.zero_grad()
        assert all(p.grad is None for p in sm.parameters())
