"""Algebraic invariants of the convolution/pooling kernels (hypothesis).

Cheaper than finite differences and complementary to them: these pin the
linear-operator structure of conv2d and the order statistics of pooling
across random geometries.
"""

import numpy as np
from hypothesis import given, settings, strategies as st

from repro.nn import functional as F
from repro.nn.tensor import Tensor


geom = st.tuples(
    st.integers(1, 3),  # batch
    st.integers(1, 4),  # in channels
    st.integers(1, 4),  # out channels
    st.integers(3, 8),  # spatial
    st.sampled_from([1, 3]),  # kernel
    st.sampled_from([1, 2]),  # stride
    st.sampled_from([0, 1]),  # padding
)


def rand(shape, seed, scale=1.0):
    return (np.random.default_rng(seed).standard_normal(shape) * scale).astype(np.float32)


class TestConvLinearity:
    @settings(max_examples=30, deadline=None)
    @given(g=geom, seed=st.integers(0, 1000))
    def test_additive_in_input(self, g, seed):
        n, cin, cout, hw, k, stride, pad = g
        if hw + 2 * pad < k:
            return
        a = rand((n, cin, hw, hw), seed)
        b = rand((n, cin, hw, hw), seed + 1)
        w = Tensor(rand((cout, cin, k, k), seed + 2, 0.5))
        lhs = F.conv2d(Tensor(a + b), w, stride=stride, padding=pad).data
        rhs = (
            F.conv2d(Tensor(a), w, stride=stride, padding=pad).data
            + F.conv2d(Tensor(b), w, stride=stride, padding=pad).data
        )
        np.testing.assert_allclose(lhs, rhs, atol=1e-4)

    @settings(max_examples=30, deadline=None)
    @given(g=geom, seed=st.integers(0, 1000), c=st.floats(-3.0, 3.0))
    def test_homogeneous_in_weights(self, g, seed, c):
        n, cin, cout, hw, k, stride, pad = g
        if hw + 2 * pad < k:
            return
        x = Tensor(rand((n, cin, hw, hw), seed))
        w = rand((cout, cin, k, k), seed + 1, 0.5)
        lhs = F.conv2d(x, Tensor(w * np.float32(c)), stride=stride, padding=pad).data
        rhs = c * F.conv2d(x, Tensor(w), stride=stride, padding=pad).data
        np.testing.assert_allclose(lhs, rhs, atol=1e-3)

    @settings(max_examples=30, deadline=None)
    @given(g=geom, seed=st.integers(0, 1000))
    def test_zero_input_gives_bias(self, g, seed):
        n, cin, cout, hw, k, stride, pad = g
        if hw + 2 * pad < k:
            return
        x = Tensor(np.zeros((n, cin, hw, hw), dtype=np.float32))
        w = Tensor(rand((cout, cin, k, k), seed, 0.5))
        bias = Tensor(rand((cout,), seed + 1))
        out = F.conv2d(x, w, bias, stride=stride, padding=pad).data
        expected = np.broadcast_to(bias.data.reshape(1, cout, 1, 1), out.shape)
        np.testing.assert_allclose(out, expected, atol=1e-6)

    @settings(max_examples=20, deadline=None)
    @given(seed=st.integers(0, 1000))
    def test_identity_kernel(self, seed):
        """1×1 conv with identity channel mixing must reproduce the input."""
        x = rand((2, 3, 5, 5), seed)
        w = np.eye(3, dtype=np.float32).reshape(3, 3, 1, 1)
        out = F.conv2d(Tensor(x), Tensor(w)).data
        np.testing.assert_allclose(out, x, atol=1e-6)


class TestPoolingOrderStatistics:
    pool_geom = st.tuples(st.integers(1, 3), st.integers(1, 3), st.sampled_from([2, 4]))

    @settings(max_examples=30, deadline=None)
    @given(g=pool_geom, seed=st.integers(0, 1000))
    def test_max_ge_avg(self, g, seed):
        n, c, k = g
        x = Tensor(rand((n, c, 2 * k, 2 * k), seed))
        mx = F.max_pool2d(x, k).data
        av = F.avg_pool2d(x, k).data
        assert (mx >= av - 1e-6).all()

    @settings(max_examples=30, deadline=None)
    @given(g=pool_geom, seed=st.integers(0, 1000))
    def test_pool_outputs_come_from_input(self, g, seed):
        n, c, k = g
        x = rand((n, c, 2 * k, 2 * k), seed)
        mx = F.max_pool2d(Tensor(x), k).data
        # every max-pool output value must literally appear in the input
        assert np.isin(mx.round(5), x.round(5)).all()

    @settings(max_examples=30, deadline=None)
    @given(g=pool_geom, seed=st.integers(0, 1000))
    def test_avg_preserves_mean(self, g, seed):
        n, c, k = g
        x = rand((n, c, 2 * k, 2 * k), seed)
        av = F.avg_pool2d(Tensor(x), k).data
        np.testing.assert_allclose(
            av.mean(axis=(2, 3)), x.mean(axis=(2, 3)), atol=1e-5
        )

    @settings(max_examples=30, deadline=None)
    @given(g=pool_geom, seed=st.integers(0, 1000), shift=st.floats(-5.0, 5.0))
    def test_max_pool_shift_equivariant(self, g, seed, shift):
        n, c, k = g
        x = rand((n, c, 2 * k, 2 * k), seed)
        a = F.max_pool2d(Tensor(x + np.float32(shift)), k).data
        b = F.max_pool2d(Tensor(x), k).data + np.float32(shift)
        np.testing.assert_allclose(a, b, atol=1e-4)
