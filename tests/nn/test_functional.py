"""Value-level tests for composite ops (shapes, identities, invariants)."""

import numpy as np
import pytest

from repro.nn import functional as F
from repro.nn.tensor import Tensor

from tests.helpers import rand_t


class TestSoftmaxFamily:
    def test_softmax_rows_sum_to_one(self):
        x = rand_t((6, 9), seed=1, scale=5.0, requires_grad=False)
        s = F.softmax(x, axis=1).data
        np.testing.assert_allclose(s.sum(axis=1), np.ones(6), atol=1e-5)
        assert (s >= 0).all()

    def test_log_softmax_matches_log_of_softmax(self):
        x = rand_t((4, 5), seed=2, scale=3.0, requires_grad=False)
        np.testing.assert_allclose(
            F.log_softmax(x, axis=1).data,
            np.log(F.softmax(x, axis=1).data),
            atol=1e-5,
        )

    def test_stability_with_huge_logits(self):
        x = Tensor(np.array([[1e4, 0.0, -1e4]], dtype=np.float32))
        out = F.log_softmax(x, axis=1).data
        assert np.isfinite(out).all()

    def test_shift_invariance(self):
        x = rand_t((3, 4), seed=3, requires_grad=False)
        shifted = Tensor(x.data + 100.0)
        np.testing.assert_allclose(
            F.softmax(x, axis=1).data, F.softmax(shifted, axis=1).data, atol=1e-5
        )


class TestCrossEntropy:
    def test_matches_manual(self):
        x = rand_t((5, 4), seed=4, requires_grad=False)
        y = np.array([0, 1, 2, 3, 0])
        logp = F.log_softmax(x, axis=1).data
        manual = -logp[np.arange(5), y].mean()
        assert abs(F.cross_entropy(x, y).item() - manual) < 1e-6

    def test_uniform_logits_give_log_c(self):
        x = Tensor(np.zeros((3, 10), dtype=np.float32))
        assert abs(F.cross_entropy(x, np.array([0, 5, 9])).item() - np.log(10)) < 1e-5

    def test_perfect_prediction_near_zero(self):
        x = Tensor(np.eye(4, dtype=np.float32) * 50)
        assert F.cross_entropy(x, np.arange(4)).item() < 1e-4

    def test_bad_reduction_raises(self):
        with pytest.raises(ValueError):
            F.cross_entropy(rand_t((2, 2)), np.array([0, 1]), reduction="median")


class TestKL:
    def test_zero_for_identical_distributions(self):
        x = rand_t((5, 6), seed=5, requires_grad=False)
        s = Tensor(x.data.copy(), requires_grad=True)
        assert abs(F.kl_div_with_logits(x, s).item()) < 1e-6

    def test_nonnegative(self):
        for seed in range(5):
            t = rand_t((4, 5), seed=seed, scale=3.0, requires_grad=False)
            s = rand_t((4, 5), seed=seed + 100, scale=3.0)
            assert F.kl_div_with_logits(t, s).item() >= -1e-6

    def test_teacher_not_differentiated(self):
        t = rand_t((3, 4), seed=6)
        s = rand_t((3, 4), seed=7)
        F.kl_div_with_logits(t, s).backward()
        assert t.grad is None and s.grad is not None

    def test_symmetric_pair(self):
        a = rand_t((3, 4), seed=8)
        b = rand_t((3, 4), seed=9)
        la, lb = F.symmetric_kl_with_logits(a, b)
        la.backward()
        lb.backward()
        assert a.grad is not None and b.grad is not None

    def test_temperature_softens(self):
        t = rand_t((4, 5), seed=10, scale=4.0, requires_grad=False)
        s = rand_t((4, 5), seed=11, scale=4.0)
        hot = F.kl_div_with_logits(t, s, temperature=1.0).item()
        cool = F.kl_div_with_logits(t, s, temperature=10.0).item()
        assert cool < hot  # high temperature flattens both distributions

    def test_shape_mismatch_teacher_np(self):
        # teacher may be a plain ndarray
        t = np.zeros((2, 3), dtype=np.float32)
        s = rand_t((2, 3), seed=12)
        assert F.kl_div_with_logits(t, s).item() >= 0


class TestOneHot:
    def test_basic(self):
        oh = F.one_hot(np.array([0, 2, 1]), 3)
        np.testing.assert_allclose(oh, [[1, 0, 0], [0, 0, 1], [0, 1, 0]])

    def test_rows_sum_to_one(self):
        oh = F.one_hot(np.arange(7) % 4, 4)
        np.testing.assert_allclose(oh.sum(axis=1), np.ones(7))


class TestPooling:
    def test_max_pool_values(self):
        x = Tensor(np.arange(16, dtype=np.float32).reshape(1, 1, 4, 4))
        out = F.max_pool2d(x, 2).data
        np.testing.assert_allclose(out[0, 0], [[5, 7], [13, 15]])

    def test_avg_pool_values(self):
        x = Tensor(np.arange(16, dtype=np.float32).reshape(1, 1, 4, 4))
        out = F.avg_pool2d(x, 2).data
        np.testing.assert_allclose(out[0, 0], [[2.5, 4.5], [10.5, 12.5]])

    def test_adaptive_pool_is_mean(self):
        x = rand_t((2, 3, 4, 4), seed=13, requires_grad=False)
        np.testing.assert_allclose(
            F.adaptive_avg_pool2d(x).data[..., 0, 0], x.data.mean(axis=(2, 3)), atol=1e-6
        )

    def test_indivisible_raises(self):
        with pytest.raises(NotImplementedError):
            F.max_pool2d(rand_t((1, 1, 5, 5)), 2)
        with pytest.raises(NotImplementedError):
            F.avg_pool2d(rand_t((1, 1, 6, 6)), 2, stride=1)
        with pytest.raises(NotImplementedError):
            F.adaptive_avg_pool2d(rand_t((1, 1, 4, 4)), 2)


class TestBatchNorm:
    def test_train_mode_normalizes_batch(self):
        x = rand_t((8, 3, 5, 5), seed=14, scale=4.0, requires_grad=False)
        gamma = Tensor(np.ones(3, dtype=np.float32), requires_grad=True)
        beta = Tensor(np.zeros(3, dtype=np.float32), requires_grad=True)
        rm = np.zeros(3, dtype=np.float32)
        rv = np.ones(3, dtype=np.float32)
        out = F.batch_norm2d(x, gamma, beta, rm, rv, training=True).data
        np.testing.assert_allclose(out.mean(axis=(0, 2, 3)), np.zeros(3), atol=1e-4)
        np.testing.assert_allclose(out.std(axis=(0, 2, 3)), np.ones(3), atol=1e-3)

    def test_running_stats_updated_in_train_only(self):
        x = rand_t((8, 2, 4, 4), seed=15, requires_grad=False)
        gamma = Tensor(np.ones(2, dtype=np.float32))
        beta = Tensor(np.zeros(2, dtype=np.float32))
        rm = np.zeros(2, dtype=np.float32)
        rv = np.ones(2, dtype=np.float32)
        F.batch_norm2d(x, gamma, beta, rm, rv, training=True, momentum=0.5)
        assert not np.allclose(rm, 0.0)
        rm2, rv2 = rm.copy(), rv.copy()
        F.batch_norm2d(x, gamma, beta, rm, rv, training=False)
        np.testing.assert_array_equal(rm, rm2)
        np.testing.assert_array_equal(rv, rv2)

    def test_eval_uses_running_stats(self):
        x = Tensor(np.full((2, 1, 2, 2), 3.0, dtype=np.float32))
        gamma = Tensor(np.ones(1, dtype=np.float32))
        beta = Tensor(np.zeros(1, dtype=np.float32))
        rm = np.array([3.0], dtype=np.float32)
        rv = np.array([1.0], dtype=np.float32)
        out = F.batch_norm2d(x, gamma, beta, rm, rv, training=False).data
        np.testing.assert_allclose(out, np.zeros_like(out), atol=1e-3)


class TestDropout:
    def test_eval_is_identity(self):
        x = rand_t((5, 5), seed=16)
        out = F.dropout(x, 0.7, training=False, rng=np.random.default_rng(0))
        assert out is x

    def test_zero_p_is_identity(self):
        x = rand_t((5, 5), seed=17)
        assert F.dropout(x, 0.0, training=True, rng=np.random.default_rng(0)) is x

    def test_inverted_scaling_preserves_mean(self):
        x = Tensor(np.ones((200, 200), dtype=np.float32))
        out = F.dropout(x, 0.5, training=True, rng=np.random.default_rng(0))
        assert abs(out.data.mean() - 1.0) < 0.02
