"""Finite-difference gradient verification for every composite op.

These are the correctness anchor of the whole substrate: if these pass, the
FL training dynamics run on true gradients.
"""

import numpy as np
import pytest

from repro.nn import functional as F
from repro.nn.tensor import Tensor

from tests.helpers import check_grads, rand_t


class TestDenseHeads:
    def test_linear(self):
        x = rand_t((4, 5), seed=1)
        w = rand_t((3, 5), seed=2)
        b = rand_t((3,), seed=3)
        check_grads(lambda: (F.linear(x, w, b) ** 2).sum(), [x, w, b])

    def test_linear_no_bias(self):
        x = rand_t((4, 5), seed=4)
        w = rand_t((3, 5), seed=5)
        check_grads(lambda: (F.linear(x, w) ** 2).sum(), [x, w])

    def test_log_softmax(self):
        x = rand_t((5, 7), seed=6, scale=2.0)
        t = np.random.default_rng(0).standard_normal((5, 7)).astype(np.float32)
        check_grads(lambda: (F.log_softmax(x, axis=1) * Tensor(t)).sum(), [x])

    def test_softmax(self):
        x = rand_t((5, 7), seed=7, scale=2.0)
        t = np.random.default_rng(1).standard_normal((5, 7)).astype(np.float32)
        check_grads(lambda: (F.softmax(x, axis=1) * Tensor(t)).sum(), [x])

    @pytest.mark.parametrize("reduction", ["mean", "sum"])
    def test_cross_entropy(self, reduction):
        x = rand_t((6, 5), seed=8, scale=2.0)
        y = np.array([0, 1, 2, 3, 4, 0])
        check_grads(lambda: F.cross_entropy(x, y, reduction=reduction), [x])

    def test_nll(self):
        x = rand_t((4, 3), seed=9)
        y = np.array([0, 2, 1, 1])
        check_grads(lambda: F.nll_loss(F.log_softmax(x, axis=1), y), [x])

    @pytest.mark.parametrize("temperature", [1.0, 2.5])
    def test_kl_div(self, temperature):
        teacher = rand_t((5, 4), seed=10, scale=2.0, requires_grad=False)
        student = rand_t((5, 4), seed=11, scale=2.0)
        check_grads(
            lambda: F.kl_div_with_logits(teacher, student, temperature=temperature),
            [student],
        )

    @pytest.mark.parametrize("reduction", ["mean", "sum"])
    def test_mse(self, reduction):
        x = rand_t((4, 3), seed=12)
        t = rand_t((4, 3), seed=13, requires_grad=False)
        check_grads(lambda: F.mse_loss(x, t, reduction=reduction), [x])


class TestConv:
    @pytest.mark.parametrize(
        "n,cin,cout,hw,k,stride,pad",
        [
            (2, 3, 4, 6, 3, 1, 1),
            (1, 2, 3, 5, 3, 2, 1),
            (2, 1, 2, 4, 1, 1, 0),
            (1, 2, 2, 7, 5, 1, 2),
            (2, 3, 2, 6, 3, 3, 0),
        ],
    )
    def test_conv2d_grads(self, n, cin, cout, hw, k, stride, pad):
        x = rand_t((n, cin, hw, hw), seed=20)
        w = rand_t((cout, cin, k, k), seed=21, scale=0.5)
        b = rand_t((cout,), seed=22)
        # mean keeps the loss magnitude small — central differences of a
        # large fp32 sum would be dominated by rounding
        check_grads(
            lambda: (F.conv2d(x, w, b, stride=stride, padding=pad) ** 2).mean(),
            [x, w, b],
        )

    def test_conv2d_matches_naive(self):
        """im2col convolution must equal a direct nested-loop convolution."""
        g = np.random.default_rng(3)
        x = g.standard_normal((2, 3, 5, 5)).astype(np.float32)
        w = g.standard_normal((4, 3, 3, 3)).astype(np.float32)
        out = F.conv2d(Tensor(x), Tensor(w), stride=1, padding=1).data
        xp = np.pad(x, ((0, 0), (0, 0), (1, 1), (1, 1)))
        ref = np.zeros_like(out)
        for n in range(2):
            for o in range(4):
                for i in range(5):
                    for j in range(5):
                        ref[n, o, i, j] = np.sum(xp[n, :, i : i + 3, j : j + 3] * w[o])
        np.testing.assert_allclose(out, ref, atol=1e-4)

    def test_channel_mismatch_raises(self):
        with pytest.raises(ValueError):
            F.conv2d(rand_t((1, 3, 4, 4)), rand_t((2, 4, 3, 3)))


class TestNormAndPool:
    def test_batch_norm_train_grads(self):
        x = rand_t((3, 2, 4, 4), seed=30)
        gamma = rand_t((2,), seed=31)
        gamma.data += 1.0
        beta = rand_t((2,), seed=32)
        rm = np.zeros(2, dtype=np.float32)
        rv = np.ones(2, dtype=np.float32)

        def f():
            # fresh buffer copies: running-stat updates must not perturb
            # repeated forward evaluations during numeric differentiation
            return (
                F.batch_norm2d(x, gamma, beta, rm.copy(), rv.copy(), training=True) ** 2
            ).sum()

        check_grads(f, [x, gamma, beta])

    def test_batch_norm_eval_grads(self):
        x = rand_t((3, 2, 4, 4), seed=33)
        gamma = rand_t((2,), seed=34)
        beta = rand_t((2,), seed=35)
        rm = np.array([0.3, -0.2], dtype=np.float32)
        rv = np.array([1.5, 0.7], dtype=np.float32)
        check_grads(
            lambda: (F.batch_norm2d(x, gamma, beta, rm, rv, training=False) ** 2).sum(),
            [x, gamma, beta],
        )

    def test_max_pool_grads(self):
        x = rand_t((2, 3, 4, 4), seed=36)
        check_grads(lambda: (F.max_pool2d(x, 2) ** 2).sum(), [x])

    def test_avg_pool_grads(self):
        x = rand_t((2, 3, 4, 4), seed=37)
        check_grads(lambda: (F.avg_pool2d(x, 2) ** 2).sum(), [x])

    def test_adaptive_avg_pool_grads(self):
        x = rand_t((2, 3, 5, 5), seed=38)
        check_grads(lambda: (F.adaptive_avg_pool2d(x) ** 2).sum(), [x])


class TestDropout:
    def test_dropout_grad_matches_mask(self):
        x = rand_t((8, 8), seed=40)
        rng = np.random.default_rng(7)
        out = F.dropout(x, 0.5, training=True, rng=rng)
        out.sum().backward()
        mask = (out.data != 0).astype(np.float32)
        np.testing.assert_allclose(x.grad, mask * 2.0, atol=1e-6)
