"""The fast conv kernels against their reference oracles.

The strided im2col and the offset-accumulate col2im are pure reimplement-
ations of the gather/scatter reference paths; equality here is *bitwise*
(``assert_array_equal``), not allclose — both pairs accumulate in the same
order, so any difference is a bug. Finite differences then anchor the
whole conv backward (which composes both fast paths) to calculus.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.nn import functional as F
from repro.nn.functional import (
    _col2im_accumulate,
    _col2im_scatter,
    _im2col_gather,
    _im2col_strided,
    im2col_indices,
)
from repro.nn.tensor import Tensor
from tests.helpers import check_grads

# Odd geometries on purpose: 1x1 kernels, stride > kernel, pad >= kernel,
# non-square-friendly spatial sizes. (n, c, h, w, k, stride, pad)
GEOMETRIES = [
    (2, 3, 8, 8, 3, 1, 1),
    (1, 1, 7, 7, 1, 1, 0),
    (2, 2, 9, 9, 3, 2, 0),
    (3, 2, 8, 8, 3, 2, 1),
    (1, 4, 11, 11, 5, 2, 2),
    (2, 1, 6, 6, 5, 1, 0),
    (1, 2, 5, 5, 1, 2, 1),
    (2, 3, 10, 10, 5, 3, 1),
    # degenerate spatial dims from deep VGG stages at smoke scale: the
    # window-view transpose can silently become a reshape-view here, so
    # these are the geometries where layout (not value) bugs hide
    (2, 16, 1, 1, 3, 1, 1),
    (3, 8, 2, 2, 3, 1, 1),
]


def _cols_for(geometry, seed=0):
    n, c, h, w, k, stride, pad = geometry
    x = np.random.default_rng(seed).standard_normal((n, c, h, w)).astype(np.float32)
    cols, out_h, out_w = _im2col_gather(x, k, k, stride, pad)
    return x, np.ascontiguousarray(cols), out_h, out_w


class TestFastPathsBitwise:
    @pytest.mark.parametrize("geometry", GEOMETRIES)
    def test_im2col_strided_matches_gather(self, geometry):
        n, c, h, w, k, stride, pad = geometry
        x = np.random.default_rng(1).standard_normal((n, c, h, w)).astype(np.float32)
        ref, oh_ref, ow_ref = _im2col_gather(x, k, k, stride, pad)
        fast, oh, ow = _im2col_strided(x, k, k, stride, pad)
        assert (oh, ow) == (oh_ref, ow_ref)
        np.testing.assert_array_equal(fast, ref)
        # Equal values are necessary but NOT sufficient: conv2d feeds the
        # columns to einsum/BLAS, which picks its reduction order from
        # operand strides. A layout change flips last-ulp bits in every
        # degenerate geometry (1x1 kernels, 1x1 outputs) — so the fast
        # path must reproduce the gather's memory layout exactly.
        assert fast.strides == ref.strides, (
            f"layout drift: fast {fast.strides} vs gather {ref.strides}"
        )

    @pytest.mark.parametrize("geometry", GEOMETRIES)
    def test_col2im_accumulate_matches_scatter(self, geometry):
        n, c, h, w, k, stride, pad = geometry
        x, cols, _, _ = _cols_for(geometry)
        ref = _col2im_scatter(cols, x.shape, k, k, stride, pad)
        fast = _col2im_accumulate(cols, x.shape, k, k, stride, pad)
        # bitwise: both fold kernel offsets in ascending (ki, kj) order
        np.testing.assert_array_equal(fast, ref)

    def test_float64_cols_stay_float64(self):
        x, cols, _, _ = _cols_for((2, 2, 6, 6, 3, 1, 1))
        out = _col2im_accumulate(cols.astype(np.float64), x.shape, 3, 3, 1, 1)
        assert out.dtype == np.float64


class TestIndexCacheImmutable:
    def test_cached_indices_are_read_only(self):
        k, i, j, _, _ = im2col_indices(3, 8, 8, 3, 3, 1, 1)
        for arr in (k, i, j):
            assert not arr.flags.writeable
            with pytest.raises(ValueError):
                arr[0] = 0

    def test_mutation_attempt_does_not_poison_cache(self):
        """Regression: lru_cache hands every caller the *same* arrays; a
        writable entry mutated once would corrupt every later conv with
        that geometry."""
        geometry = (2, 7, 7, 3, 3, 2, 1)
        k1, i1, j1, _, _ = im2col_indices(*geometry)
        with pytest.raises(ValueError):
            i1 += 1
        k2, i2, j2, _, _ = im2col_indices(*geometry)
        assert i2 is i1  # same cache entry...
        x = np.random.default_rng(2).standard_normal((1, 2, 7, 7)).astype(np.float32)
        a, _, _ = _im2col_gather(x, 3, 3, 2, 1)
        b, _, _ = _im2col_strided(x, 3, 3, 2, 1)
        np.testing.assert_array_equal(a, b)  # ...and still correct

    def test_lru_cap_evicts_without_breaking_frozen_entries(self):
        """The memo is bounded (maxsize=256): a flood of distinct geometries
        — e.g. from batched cohort groups — must evict old entries instead
        of growing without limit, and entries recomputed after eviction must
        carry the same read-only invariant and the same values."""
        maxsize = im2col_indices.cache_info().maxsize
        assert maxsize == 256  # the cap this test pins
        im2col_indices.cache_clear()
        geometry = (3, 8, 8, 3, 3, 1, 1)
        k1, i1, j1, oh1, ow1 = im2col_indices(*geometry)
        # Flood the cache past its cap with distinct geometries.
        for h in range(maxsize + 8):
            im2col_indices(1, 8 + h, 8, 3, 3, 1, 1)
        info = im2col_indices.cache_info()
        assert info.currsize <= maxsize  # capped, not unbounded
        # The original entry was evicted; the recomputed one is a *new*
        # object with identical frozen contents.
        k2, i2, j2, oh2, ow2 = im2col_indices(*geometry)
        assert i2 is not i1
        for arr in (k2, i2, j2):
            assert not arr.flags.writeable
            with pytest.raises(ValueError):
                arr[0] = 0
        np.testing.assert_array_equal(k2, k1)
        np.testing.assert_array_equal(i2, i1)
        np.testing.assert_array_equal(j2, j1)
        assert (oh2, ow2) == (oh1, ow1)


class TestConvGradcheck:
    """Central-difference gradcheck through the *fast* kernels: conv2d
    backward composes col2im (input grad) and im2col-of-grad (weight grad),
    so this pins both against calculus rather than just the reference."""

    @pytest.mark.parametrize(
        "geometry",
        [
            (2, 2, 6, 6, 3, 1, 1),
            (1, 3, 7, 7, 3, 2, 0),
            (2, 1, 5, 5, 1, 1, 0),
            (1, 2, 8, 8, 5, 2, 1),
            (1, 1, 7, 7, 5, 3, 2),
        ],
    )
    def test_conv2d_grads(self, geometry):
        n, c, hw, _w, k, stride, pad = geometry
        rng = np.random.default_rng(sum(geometry))
        x = Tensor(
            rng.standard_normal((n, c, hw, hw)).astype(np.float32), requires_grad=True
        )
        w = Tensor(
            (rng.standard_normal((2, c, k, k)) * 0.5).astype(np.float32),
            requires_grad=True,
        )
        b = Tensor(rng.standard_normal(2).astype(np.float32), requires_grad=True)
        check_grads(
            lambda: F.conv2d(x, w, b, stride=stride, padding=pad).sum(),
            [x, w, b],
        )
