"""Weight initializers."""

import math

import numpy as np
import pytest

from repro.nn import init


class TestFan:
    def test_dense(self):
        assert init.fan_in_out((10, 4)) == (4, 10)

    def test_conv(self):
        # (oc=8, ic=3, kh=3, kw=3): fan_in = 27, fan_out = 72
        assert init.fan_in_out((8, 3, 3, 3)) == (27, 72)

    def test_unsupported(self):
        with pytest.raises(ValueError):
            init.fan_in_out((5,))


class TestDistributions:
    def test_kaiming_normal_std(self):
        rng = np.random.default_rng(0)
        w = init.kaiming_normal((256, 128), rng)
        expected = math.sqrt(2.0) / math.sqrt(128)
        assert abs(w.std() - expected) / expected < 0.05
        assert w.dtype == np.float32

    def test_kaiming_uniform_bound(self):
        rng = np.random.default_rng(0)
        w = init.kaiming_uniform((64, 64), rng)
        bound = math.sqrt(2.0) * math.sqrt(3.0 / 64)
        assert np.abs(w).max() <= bound
        assert np.abs(w).max() > 0.8 * bound  # actually fills the range

    def test_xavier_uniform_bound(self):
        rng = np.random.default_rng(0)
        w = init.xavier_uniform((32, 96), rng)
        bound = math.sqrt(6.0 / (96 + 32))
        assert np.abs(w).max() <= bound

    def test_zeros_ones(self):
        assert init.zeros((3, 3)).sum() == 0
        assert init.ones((3, 3)).sum() == 9

    def test_deterministic_given_rng(self):
        a = init.kaiming_normal((8, 8), np.random.default_rng(5))
        b = init.kaiming_normal((8, 8), np.random.default_rng(5))
        np.testing.assert_array_equal(a, b)

    def test_conv_shape_variance_scales_with_fan_in(self):
        rng = np.random.default_rng(0)
        narrow = init.kaiming_normal((64, 4, 3, 3), rng).std()
        wide = init.kaiming_normal((64, 64, 3, 3), rng).std()
        assert narrow > 2 * wide  # fan_in 36 vs 576 → 4x std ratio
