"""Layer modules: shapes, determinism, containers."""

import numpy as np
import pytest

from repro.nn import (
    AdaptiveAvgPool2d,
    AvgPool2d,
    BatchNorm2d,
    Conv2d,
    Dropout,
    Flatten,
    Identity,
    Linear,
    MaxPool2d,
    ModuleList,
    ReLU,
    Sequential,
    Sigmoid,
    Tanh,
)
from repro.nn.tensor import Tensor

from tests.helpers import rand_t


def x4(seed=0):
    return rand_t((2, 3, 8, 8), seed=seed, requires_grad=False)


class TestLinear:
    def test_shape(self):
        m = Linear(5, 7, rng=np.random.default_rng(0))
        assert m(rand_t((3, 5))).shape == (3, 7)

    def test_no_bias(self):
        m = Linear(5, 7, bias=False, rng=np.random.default_rng(0))
        assert m.bias is None
        assert len(m.parameters()) == 1

    def test_deterministic_init(self):
        a = Linear(5, 7, rng=np.random.default_rng(42))
        b = Linear(5, 7, rng=np.random.default_rng(42))
        np.testing.assert_array_equal(a.weight.data, b.weight.data)

    def test_repr(self):
        assert "in_features=5" in repr(Linear(5, 7))


class TestConv2d:
    @pytest.mark.parametrize("stride,pad,expect", [(1, 1, 8), (2, 1, 4), (1, 0, 6)])
    def test_output_size(self, stride, pad, expect):
        m = Conv2d(3, 4, 3, stride=stride, padding=pad, rng=np.random.default_rng(0))
        assert m(x4()).shape == (2, 4, expect, expect)

    def test_bias_optional(self):
        assert Conv2d(3, 4, 3).bias is None
        assert Conv2d(3, 4, 3, bias=True).bias is not None


class TestPoolingLayers:
    def test_max(self):
        assert MaxPool2d(2)(x4()).shape == (2, 3, 4, 4)

    def test_avg(self):
        assert AvgPool2d(2)(x4()).shape == (2, 3, 4, 4)

    def test_adaptive(self):
        assert AdaptiveAvgPool2d()(x4()).shape == (2, 3, 1, 1)


class TestActivations:
    def test_shapes_preserved(self):
        for m in (ReLU(), Tanh(), Sigmoid()):
            assert m(x4()).shape == (2, 3, 8, 8)

    def test_sigmoid_range(self):
        out = Sigmoid()(rand_t((10,), scale=5.0)).data
        assert (out > 0).all() and (out < 1).all()


class TestDropoutLayer:
    def test_invalid_p(self):
        with pytest.raises(ValueError):
            Dropout(1.0)
        with pytest.raises(ValueError):
            Dropout(-0.1)

    def test_eval_identity(self):
        m = Dropout(0.9, seed=0)
        m.eval()
        x = rand_t((4, 4))
        assert m(x) is x

    def test_seeded_reproducible(self):
        m1, m2 = Dropout(0.5, seed=3), Dropout(0.5, seed=3)
        x = rand_t((16, 16), requires_grad=False)
        np.testing.assert_array_equal(m1(x).data, m2(x).data)


class TestContainers:
    def test_sequential_applies_in_order(self):
        m = Sequential(Flatten(), Linear(3 * 8 * 8, 4, rng=np.random.default_rng(0)), ReLU())
        assert m(x4()).shape == (2, 4)

    def test_sequential_iteration_len_getitem(self):
        m = Sequential(ReLU(), Tanh())
        assert len(m) == 2
        assert isinstance(m[1], Tanh)
        assert [type(c).__name__ for c in m] == ["ReLU", "Tanh"]

    def test_sequential_append(self):
        m = Sequential(ReLU())
        m.append(Tanh())
        assert len(m) == 2

    def test_module_list_registers_params(self):
        ml = ModuleList([Linear(2, 2, rng=np.random.default_rng(0)) for _ in range(3)])
        assert len(ml) == 3
        assert len(list(ml[0].parameters())) == 2
        parent = Sequential()  # host so traversal sees the list
        parent.ml = ml
        assert len(parent.parameters()) == 6

    def test_module_list_not_callable(self):
        with pytest.raises(RuntimeError):
            ModuleList([ReLU()])(x4())


class TestShapeLayers:
    def test_flatten(self):
        assert Flatten()(x4()).shape == (2, 192)
        assert Flatten(start_dim=2)(x4()).shape == (2, 3, 64)

    def test_identity(self):
        x = x4()
        assert Identity()(x) is x
