"""Loss module wrappers."""

import numpy as np

from repro.nn import CrossEntropyLoss, KLDivLoss, MSELoss, SoftTargetKLLoss
from repro.nn import functional as F
from repro.nn.tensor import Tensor

from tests.helpers import rand_t


class TestCrossEntropyLoss:
    def test_matches_functional(self):
        x = rand_t((4, 5), seed=1)
        y = np.array([0, 1, 2, 3])
        assert CrossEntropyLoss()(x, y).item() == F.cross_entropy(x, y).item()

    def test_sum_reduction(self):
        x = rand_t((4, 5), seed=2)
        y = np.array([0, 1, 2, 3])
        m = CrossEntropyLoss(reduction="sum")(x, y).item()
        assert abs(m - 4 * CrossEntropyLoss()(x, y).item()) < 1e-4


class TestKLDivLoss:
    def test_zero_for_self(self):
        x = rand_t((3, 4), seed=3)
        assert abs(KLDivLoss()(x.detach(), x).item()) < 1e-6

    def test_temperature_forwarded(self):
        t = rand_t((3, 4), seed=4, scale=3.0, requires_grad=False)
        s = rand_t((3, 4), seed=5, scale=3.0)
        assert KLDivLoss(temperature=5.0)(t, s).item() < KLDivLoss()(t, s).item()


class TestSoftTargetKL:
    def test_matches_prob_teacher(self):
        probs = np.array([[0.7, 0.2, 0.1], [0.1, 0.1, 0.8]], dtype=np.float32)
        s = rand_t((2, 3), seed=6)
        loss = SoftTargetKLLoss()(probs, s)
        # teacher = log(probs): softmax(log p) = p, so KL(p || q)
        ref = F.kl_div_with_logits(np.log(probs), s)
        assert abs(loss.item() - ref.item()) < 1e-6

    def test_survives_zero_probs(self):
        probs = np.array([[1.0, 0.0]], dtype=np.float32)
        s = rand_t((1, 2), seed=7)
        assert np.isfinite(SoftTargetKLLoss()(probs, s).item())


class TestMSELoss:
    def test_value(self):
        pred = Tensor(np.array([[1.0, 2.0]], dtype=np.float32), requires_grad=True)
        target = np.array([[0.0, 0.0]], dtype=np.float32)
        assert abs(MSELoss()(pred, target).item() - 2.5) < 1e-6

    def test_zero_at_target(self):
        pred = rand_t((3, 3), seed=8)
        assert MSELoss()(pred, pred.data.copy()).item() == 0.0
