"""Model zoo: shapes, parameter counts, determinism, factory behavior."""

import numpy as np
import pytest

from repro.nn.models import (
    CNN2Layer,
    MLP,
    CifarResNet,
    VGG,
    build_model,
    default_knowledge_network,
    model_payload_mb,
    resnet20,
    resnet32,
    resnet44,
    vgg11,
    MODEL_REGISTRY,
)
from repro.nn.tensor import Tensor

from tests.helpers import rand_t


def image(n=2, c=3, s=16, seed=0):
    return rand_t((n, c, s, s), seed=seed, requires_grad=False)


class TestResNet:
    @pytest.mark.parametrize("depth,params", [(20, 272_474), (32, 466_906), (44, 661_338)])
    def test_paper_scale_param_counts(self, depth, params):
        """Parameter counts must match the CIFAR ResNet family (these drive
        the 2.1/3.2 MB round costs in Tables 1–2)."""
        m = CifarResNet(depth=depth, seed=0)
        assert m.num_parameters() == params

    def test_payload_mb_matches_paper_roundcost(self):
        # paper: 2.1 MB per round per client = up + down of ~1.05 MB fp32
        m = resnet20(seed=0)
        assert 1.0 < model_payload_mb(m) < 1.15

    def test_forward_shape(self):
        m = resnet20(seed=0, width_mult=0.25)
        assert m(image(s=16)).shape == (2, 10)

    @pytest.mark.parametrize("size", [8, 16, 32])
    def test_input_sizes(self, size):
        m = resnet20(seed=0, width_mult=0.125)
        assert m(image(s=size)).shape == (2, 10)

    def test_invalid_depth(self):
        with pytest.raises(ValueError):
            CifarResNet(depth=21)

    def test_deterministic_by_seed(self):
        a, b = resnet20(seed=5, width_mult=0.125), resnet20(seed=5, width_mult=0.125)
        for (_, pa), (_, pb) in zip(a.named_parameters(), b.named_parameters()):
            np.testing.assert_array_equal(pa.data, pb.data)

    def test_size_ordering(self):
        sizes = [resnet20(seed=0).num_parameters(), resnet32(seed=0).num_parameters(), resnet44(seed=0).num_parameters()]
        assert sizes == sorted(sizes)

    def test_backward_reaches_all_params(self):
        m = resnet20(seed=0, width_mult=0.125)
        out = m(image(s=8))
        out.sum().backward()
        assert all(p.grad is not None for p in m.parameters())


class TestVGG:
    def test_paper_scale_params(self):
        m = vgg11(seed=0)
        assert 9.0e6 < m.num_parameters() < 9.5e6  # ~9.23M, the 37/42 MB row

    def test_forward_paper_size(self):
        m = vgg11(seed=0, width_mult=0.125)
        assert m(image(s=32)).shape == (2, 10)

    def test_small_image_skips_pools(self):
        m = vgg11(seed=0, width_mult=0.125, image_size=8)
        assert m(image(s=8)).shape == (2, 10)

    def test_unknown_config(self):
        with pytest.raises(ValueError):
            VGG(config="vgg99")

    def test_dropout_head(self):
        m = VGG(num_classes=10, width_mult=0.125, image_size=8, dropout=0.5, seed=0)
        m.train()
        assert m(image(s=8)).shape == (2, 10)


class TestCNNAndMLP:
    def test_cnn_mnist_shape(self):
        m = CNN2Layer(seed=0, width_mult=0.25)
        x = rand_t((2, 1, 28, 28), requires_grad=False)
        assert m(x).shape == (2, 10)

    def test_cnn_odd_size_skips_pool(self):
        m = CNN2Layer(image_size=7, width_mult=0.25, seed=0)
        x = rand_t((2, 1, 7, 7), requires_grad=False)
        assert m(x).shape == (2, 10)

    def test_mlp(self):
        m = MLP(16, num_classes=3, hidden=(8, 8), seed=0)
        assert m(rand_t((4, 16), requires_grad=False)).shape == (4, 3)

    def test_mlp_flattens_images(self):
        m = MLP(3 * 8 * 8, num_classes=10, seed=0)
        assert m(image(s=8)).shape == (2, 10)


class TestFactory:
    @pytest.mark.parametrize("name", ["resnet-20", "resnet-32", "resnet-44", "vgg-11", "cnn-2", "mlp"])
    def test_build_all(self, name):
        c = 1 if name in ("cnn-2", "mlp") else 3
        m = build_model(name, in_channels=c, image_size=8, width_mult=0.25, seed=0)
        x = rand_t((2, c, 8, 8), requires_grad=False)
        assert m(x).shape == (2, 10)

    def test_alias_and_case_insensitive(self):
        assert build_model("ResNet-20", width_mult=0.125, seed=0).num_parameters() == \
            build_model("resnet20", width_mult=0.125, seed=0).num_parameters()

    def test_unknown_model(self):
        with pytest.raises(KeyError):
            build_model("alexnet")

    def test_registry_lists_names(self):
        names = MODEL_REGISTRY.names()
        assert "resnet-20" in names and "vgg-11" in names


class TestKnowledgeDefaults:
    def test_cifar_default_is_resnet20(self):
        m = default_knowledge_network("cifar10", width_mult=1.0)
        assert m.num_parameters() == 272_474

    def test_mnist_default_is_cnn2(self):
        m = default_knowledge_network("mnist", in_channels=1, image_size=28, width_mult=0.25)
        assert isinstance(m, CNN2Layer)

    def test_unknown_dataset(self):
        with pytest.raises(KeyError):
            default_knowledge_network("imagenet")
