"""Additional zoo coverage: VGG-13/16, resnet-56, reprs, eval-mode BN."""

import numpy as np
import pytest

from repro.nn.models import build_model, resnet56
from repro.nn.tensor import Tensor

from tests.helpers import rand_t


class TestExtendedZoo:
    @pytest.mark.parametrize("name", ["vgg-13", "vgg-16", "resnet-56"])
    def test_builds_and_forwards(self, name):
        m = build_model(name, image_size=8, width_mult=0.125, seed=0)
        x = rand_t((2, 3, 8, 8), requires_grad=False)
        assert m(x).shape == (2, 10)

    def test_vgg_family_ordering(self):
        sizes = [
            build_model(n, image_size=8, width_mult=0.125, seed=0).num_parameters()
            for n in ("vgg-11", "vgg-13", "vgg-16")
        ]
        assert sizes == sorted(sizes)

    def test_resnet56_depth(self):
        m = resnet56(width_mult=0.125, seed=0)
        assert m.depth == 56


class TestTrainEvalConsistency:
    def test_bn_models_deterministic_in_eval(self):
        m = build_model("resnet-20", image_size=8, width_mult=0.125, seed=0)
        m.eval()
        x = rand_t((3, 3, 8, 8), requires_grad=False)
        a = m(x).data
        b = m(x).data
        np.testing.assert_array_equal(a, b)

    def test_train_mode_updates_running_stats(self):
        m = build_model("resnet-20", image_size=8, width_mult=0.125, seed=0)
        bn = m.bn_stem
        before = bn.running_mean.copy()
        m.train()
        x = rand_t((8, 3, 8, 8), requires_grad=False, scale=3.0)
        m(x)
        assert not np.allclose(bn.running_mean, before)

    def test_eval_after_train_uses_population_stats(self):
        m = build_model("resnet-20", image_size=8, width_mult=0.125, seed=0)
        x = rand_t((8, 3, 8, 8), requires_grad=False)
        m.train()
        train_out = m(x).data
        m.eval()
        eval_out = m(x).data
        assert not np.allclose(train_out, eval_out)

    def test_reprs_render(self):
        for name in ("resnet-20", "vgg-11", "cnn-2", "mlp"):
            c = 1 if name in ("cnn-2", "mlp") else 3
            m = build_model(name, in_channels=c, image_size=8, width_mult=0.125, seed=0)
            assert isinstance(repr(m), str) and len(repr(m)) > 0
