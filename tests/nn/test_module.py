"""Module system: registration, traversal, state dicts, modes."""

import numpy as np
import pytest

from repro.nn import Linear, BatchNorm2d, ReLU, Sequential
from repro.nn.module import Module, Parameter
from repro.nn.tensor import Tensor


class TwoLayer(Module):
    def __init__(self):
        super().__init__()
        self.fc1 = Linear(4, 8, rng=np.random.default_rng(0))
        self.fc2 = Linear(8, 2, rng=np.random.default_rng(1))

    def forward(self, x):
        return self.fc2(self.fc1(x).relu())


class TestRegistration:
    def test_parameters_found_recursively(self):
        m = TwoLayer()
        names = [n for n, _ in m.named_parameters()]
        assert names == ["fc1.weight", "fc1.bias", "fc2.weight", "fc2.bias"]

    def test_reassignment_moves_registration(self):
        m = TwoLayer()
        m.fc1 = Linear(4, 4, rng=np.random.default_rng(2))
        assert m.fc1.out_features == 4
        assert len(m.parameters()) == 4

    def test_buffers_registered(self):
        bn = BatchNorm2d(3)
        names = [n for n, _ in bn.named_buffers()]
        assert names == ["running_mean", "running_var"]

    def test_num_parameters_and_bytes(self):
        m = Linear(10, 5, rng=np.random.default_rng(0))
        assert m.num_parameters() == 10 * 5 + 5
        assert m.num_bytes() == 4 * m.num_parameters()

    def test_num_bytes_includes_buffers(self):
        bn = BatchNorm2d(4)
        assert bn.num_bytes() == 4 * (4 + 4 + 4 + 4)


class TestModes:
    def test_train_eval_recursive(self):
        m = Sequential(Linear(2, 2, rng=np.random.default_rng(0)), ReLU(), BatchNorm2d(1))
        m.eval()
        assert all(not sub.training for sub in m.modules())
        m.train()
        assert all(sub.training for sub in m.modules())

    def test_zero_grad(self):
        m = TwoLayer()
        x = Tensor(np.ones((2, 4), dtype=np.float32))
        m(x).sum().backward()
        assert any(p.grad is not None for p in m.parameters())
        m.zero_grad()
        assert all(p.grad is None for p in m.parameters())

    def test_apply_visits_all(self):
        m = TwoLayer()
        visited = []
        m.apply(lambda mod: visited.append(type(mod).__name__))
        assert "TwoLayer" in visited and visited.count("Linear") == 2


class TestStateDict:
    def test_round_trip(self):
        m1, m2 = TwoLayer(), TwoLayer()
        m2.load_state_dict(m1.state_dict())
        for (_, p1), (_, p2) in zip(m1.named_parameters(), m2.named_parameters()):
            np.testing.assert_array_equal(p1.data, p2.data)

    def test_copy_semantics(self):
        m = TwoLayer()
        sd = m.state_dict()
        sd["fc1.weight"][...] = 0.0
        assert not np.allclose(m.fc1.weight.data, 0.0)

    def test_no_copy_view(self):
        m = TwoLayer()
        sd = m.state_dict(copy=False)
        assert sd["fc1.weight"] is m.fc1.weight.data

    def test_strict_missing_raises(self):
        m = TwoLayer()
        sd = m.state_dict()
        del sd["fc2.bias"]
        with pytest.raises(KeyError):
            m.load_state_dict(sd)

    def test_strict_unexpected_raises(self):
        m = TwoLayer()
        sd = m.state_dict()
        sd["bogus"] = np.zeros(1)
        with pytest.raises(KeyError):
            m.load_state_dict(sd)

    def test_non_strict_ignores_extras(self):
        m = TwoLayer()
        sd = m.state_dict()
        sd["bogus"] = np.zeros(1)
        m.load_state_dict(sd, strict=False)

    def test_shape_mismatch_raises(self):
        m = TwoLayer()
        sd = m.state_dict()
        sd["fc1.weight"] = np.zeros((3, 3), dtype=np.float32)
        with pytest.raises(ValueError):
            m.load_state_dict(sd)

    def test_buffers_in_state_dict(self):
        bn = BatchNorm2d(2)
        sd = bn.state_dict()
        assert "running_mean" in sd and "running_var" in sd
        sd["running_mean"][...] = 5.0
        bn.load_state_dict(sd)
        np.testing.assert_allclose(bn.running_mean, [5.0, 5.0])

    def test_load_in_place_preserves_arrays(self):
        """FL aggregation relies on load_state_dict writing in place."""
        m = TwoLayer()
        before = m.fc1.weight.data
        m.load_state_dict(m.state_dict())
        assert m.fc1.weight.data is before


class TestParameter:
    def test_requires_grad_by_default(self):
        p = Parameter(np.zeros(3, dtype=np.float32))
        assert p.requires_grad

    def test_repr(self):
        assert "Parameter" in repr(Parameter(np.zeros((2, 2), dtype=np.float32)))
