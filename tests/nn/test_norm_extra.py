"""GroupNorm / LayerNorm / GELU / LeakyReLU (FL-friendly extensions)."""

import numpy as np
import pytest

from repro.nn import functional as F
from repro.nn.layers import GELU, GroupNorm, LayerNorm, LeakyReLU
from repro.nn.tensor import Tensor

from tests.helpers import check_grads, rand_t


class TestGroupNormValues:
    def test_normalizes_per_group(self):
        x = rand_t((3, 4, 5, 5), seed=1, scale=4.0, requires_grad=False)
        gn = GroupNorm(2, 4)
        out = gn(x).data
        # per (sample, group) statistics ≈ standardized
        g = out.reshape(3, 2, 2, 5, 5)
        np.testing.assert_allclose(g.mean(axis=(2, 3, 4)), 0.0, atol=1e-4)
        np.testing.assert_allclose(g.std(axis=(2, 3, 4)), 1.0, atol=1e-3)

    def test_batch_independence(self):
        """The FL property: a sample's output must not depend on who else is
        in the batch — unlike BatchNorm."""
        gn = GroupNorm(2, 4)
        a = rand_t((1, 4, 5, 5), seed=2, requires_grad=False)
        b = rand_t((1, 4, 5, 5), seed=3, requires_grad=False)
        ab = Tensor(np.concatenate([a.data, b.data]))
        solo = gn(a).data
        joint = gn(ab).data[:1]
        np.testing.assert_allclose(solo, joint, atol=1e-5)

    def test_invalid_groups(self):
        with pytest.raises(ValueError):
            GroupNorm(3, 4)
        with pytest.raises(ValueError):
            F.group_norm(rand_t((1, 4, 2, 2)), rand_t((4,)), rand_t((4,)), num_groups=3)

    def test_grads(self):
        x = rand_t((2, 4, 3, 3), seed=4)
        gamma = rand_t((4,), seed=5)
        gamma.data += 1.0
        beta = rand_t((4,), seed=6)
        check_grads(lambda: (F.group_norm(x, gamma, beta, 2) ** 2).mean(), [x, gamma, beta])


class TestLayerNormValues:
    def test_normalizes_rows(self):
        x = rand_t((6, 12), seed=7, scale=3.0, requires_grad=False)
        ln = LayerNorm(12)
        out = ln(x).data
        np.testing.assert_allclose(out.mean(axis=1), 0.0, atol=1e-4)
        np.testing.assert_allclose(out.std(axis=1), 1.0, atol=1e-3)

    def test_rejects_images(self):
        with pytest.raises(ValueError):
            LayerNorm(4)(rand_t((2, 4, 3, 3)))

    def test_grads(self):
        x = rand_t((4, 6), seed=8)
        gamma = rand_t((6,), seed=9)
        gamma.data += 1.0
        beta = rand_t((6,), seed=10)
        check_grads(lambda: (F.layer_norm(x, gamma, beta) ** 2).mean(), [x, gamma, beta])


class TestNewActivations:
    def test_gelu_known_values(self):
        # gelu(0)=0, gelu(large)≈x, gelu(-large)≈0
        x = Tensor(np.array([0.0, 6.0, -6.0], dtype=np.float32))
        out = GELU()(x).data
        assert abs(out[0]) < 1e-6
        assert abs(out[1] - 6.0) < 1e-3
        assert abs(out[2]) < 1e-3

    def test_gelu_grads(self):
        x = rand_t((5, 4), seed=11, scale=2.0)
        check_grads(lambda: F.gelu(x).sum(), [x])

    def test_leaky_relu_values(self):
        x = Tensor(np.array([-2.0, 3.0], dtype=np.float32))
        out = LeakyReLU(0.1)(x).data
        np.testing.assert_allclose(out, [-0.2, 3.0], atol=1e-6)

    def test_leaky_relu_grads(self):
        x = rand_t((4, 4), seed=12)
        check_grads(lambda: F.leaky_relu(x, 0.2).sum(), [x])

    def test_layers_have_no_params(self):
        assert GELU().num_parameters() == 0
        assert LeakyReLU().num_parameters() == 0
