"""Optimizer math verified against hand-computed updates."""

import numpy as np
import pytest

from repro.nn.module import Parameter
from repro.nn.optim import SGD, Adam, ConstantLR, CosineAnnealingLR, StepLR, clip_grad_norm


def param(value, grad=None):
    p = Parameter(np.array(value, dtype=np.float32))
    if grad is not None:
        p.grad = np.array(grad, dtype=np.float32)
    return p


class TestSGD:
    def test_vanilla_step(self):
        p = param([1.0], grad=[0.5])
        SGD([p], lr=0.1).step()
        np.testing.assert_allclose(p.data, [0.95])

    def test_momentum_two_steps(self):
        p = param([0.0], grad=[1.0])
        opt = SGD([p], lr=0.1, momentum=0.9)
        opt.step()  # v=1, p=-0.1
        p.grad = np.array([1.0], dtype=np.float32)
        opt.step()  # v=1.9, p=-0.29
        np.testing.assert_allclose(p.data, [-0.29], atol=1e-6)

    def test_weight_decay(self):
        p = param([2.0], grad=[0.0])
        SGD([p], lr=0.1, weight_decay=0.5).step()
        np.testing.assert_allclose(p.data, [2.0 - 0.1 * 0.5 * 2.0])

    def test_nesterov(self):
        p = param([0.0], grad=[1.0])
        opt = SGD([p], lr=0.1, momentum=0.9, nesterov=True)
        opt.step()  # v=1; update = g + mu*v = 1.9 → p = -0.19
        np.testing.assert_allclose(p.data, [-0.19], atol=1e-6)

    def test_nesterov_requires_momentum(self):
        with pytest.raises(ValueError):
            SGD([param([0.0])], lr=0.1, nesterov=True)

    def test_skips_none_grads(self):
        p = param([1.0])
        SGD([p], lr=0.1).step()
        np.testing.assert_allclose(p.data, [1.0])

    def test_state_dict_round_trip(self):
        p = param([0.0], grad=[1.0])
        opt = SGD([p], lr=0.1, momentum=0.9)
        opt.step()
        state = opt.state_dict()
        p2 = param([0.0], grad=[1.0])
        opt2 = SGD([p2], lr=0.1, momentum=0.9)
        opt2.load_state_dict(state)
        p2.grad = np.array([1.0], dtype=np.float32)
        opt2.step()
        # must equal a second step of the original
        p.grad = np.array([1.0], dtype=np.float32)
        opt.step()
        np.testing.assert_allclose(p2.data, p.data + 0.1, atol=1e-6)  # opt2 started at 0

    def test_empty_params_rejected(self):
        with pytest.raises(ValueError):
            SGD([], lr=0.1)

    def test_bad_lr_rejected(self):
        with pytest.raises(ValueError):
            SGD([param([0.0])], lr=0.0)


class TestAdam:
    def test_first_step_is_lr_sized(self):
        # With bias correction, |Δ| of step 1 ≈ lr regardless of grad scale.
        p = param([0.0], grad=[1e-3])
        Adam([p], lr=0.01).step()
        np.testing.assert_allclose(abs(p.data[0]), 0.01, rtol=1e-3)

    def test_descends_quadratic(self):
        p = param([5.0])
        opt = Adam([p], lr=0.2)
        for _ in range(200):
            p.grad = 2 * p.data  # d/dx x² = 2x
            opt.step()
        assert abs(p.data[0]) < 0.3

    def test_weight_decay_applied(self):
        p1 = param([1.0], grad=[0.0])
        p2 = param([1.0], grad=[0.0])
        Adam([p1], lr=0.01, weight_decay=0.0).step()
        Adam([p2], lr=0.01, weight_decay=1.0).step()
        assert p2.data[0] < p1.data[0]


class TestClip:
    def test_no_clip_below_threshold(self):
        p = param([0.0], grad=[0.3])
        norm = clip_grad_norm([p], 1.0)
        np.testing.assert_allclose(norm, 0.3, rtol=1e-6)
        np.testing.assert_allclose(p.grad, [0.3])

    def test_clips_to_max_norm(self):
        p1 = param([0.0], grad=[3.0])
        p2 = param([0.0], grad=[4.0])
        norm = clip_grad_norm([p1, p2], 1.0)
        np.testing.assert_allclose(norm, 5.0, rtol=1e-6)
        total = np.sqrt(p1.grad[0] ** 2 + p2.grad[0] ** 2)
        np.testing.assert_allclose(total, 1.0, rtol=1e-5)

    def test_all_none_grads(self):
        assert clip_grad_norm([param([1.0])], 1.0) == 0.0


class TestSchedulers:
    def test_constant(self):
        p = param([0.0])
        opt = SGD([p], lr=0.5)
        sched = ConstantLR(opt)
        for _ in range(5):
            assert sched.step() == 0.5

    def test_step_lr(self):
        opt = SGD([param([0.0])], lr=1.0)
        sched = StepLR(opt, step_size=2, gamma=0.1)
        lrs = [sched.step() for _ in range(5)]
        # torch semantics: decay applies at epochs 2 and 4
        np.testing.assert_allclose(lrs, [1.0, 0.1, 0.1, 0.01, 0.01], rtol=1e-6)

    def test_cosine_endpoints(self):
        opt = SGD([param([0.0])], lr=1.0)
        sched = CosineAnnealingLR(opt, t_max=10, eta_min=0.1)
        lrs = [sched.step() for _ in range(10)]
        assert lrs[0] < 1.0
        np.testing.assert_allclose(lrs[-1], 0.1, atol=1e-6)
        assert all(a >= b for a, b in zip(lrs, lrs[1:]))  # monotone decay

    def test_invalid_args(self):
        opt = SGD([param([0.0])], lr=1.0)
        with pytest.raises(ValueError):
            StepLR(opt, step_size=0)
        with pytest.raises(ValueError):
            CosineAnnealingLR(opt, t_max=0)
