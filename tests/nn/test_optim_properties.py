"""Property-based optimizer invariants."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.nn.module import Parameter
from repro.nn.optim import SGD, Adam


def param_with_grad(seed, n=8, grad_scale=1.0):
    g = np.random.default_rng(seed)
    p = Parameter(g.standard_normal(n).astype(np.float32))
    p.grad = (g.standard_normal(n) * grad_scale).astype(np.float32)
    return p


class TestSGDProperties:
    @settings(max_examples=30, deadline=None)
    @given(seed=st.integers(0, 1000), lr=st.floats(1e-4, 0.5))
    def test_step_moves_against_gradient(self, seed, lr):
        p = param_with_grad(seed)
        before = p.data.copy()
        grad = p.grad.copy()
        SGD([p], lr=lr).step()
        np.testing.assert_allclose(p.data, before - lr * grad, atol=1e-6)

    @settings(max_examples=30, deadline=None)
    @given(seed=st.integers(0, 1000), wd=st.floats(0.0, 0.5))
    def test_weight_decay_shrinks_norm_on_zero_grad(self, seed, wd):
        p = param_with_grad(seed, grad_scale=0.0)
        before = float(np.linalg.norm(p.data))
        SGD([p], lr=0.1, weight_decay=wd).step()
        after = float(np.linalg.norm(p.data))
        if wd == 0.0:
            assert after == pytest.approx(before)
        else:
            assert after < before + 1e-7

    @settings(max_examples=20, deadline=None)
    @given(seed=st.integers(0, 1000))
    def test_momentum_accumulates_along_constant_gradient(self, seed):
        """With a constant gradient, the momentum step size grows toward
        g/(1−μ) — each step moves at least as far as the previous."""
        p = param_with_grad(seed, grad_scale=0.0)
        g = np.ones_like(p.data)
        opt = SGD([p], lr=0.01, momentum=0.9)
        positions = [p.data.copy()]
        for _ in range(5):
            p.grad = g.copy()
            opt.step()
            positions.append(p.data.copy())
        deltas = [np.linalg.norm(b - a) for a, b in zip(positions, positions[1:])]
        assert all(d2 >= d1 - 1e-7 for d1, d2 in zip(deltas, deltas[1:]))


class TestAdamProperties:
    @settings(max_examples=30, deadline=None)
    @given(seed=st.integers(0, 1000), scale=st.floats(1e-4, 1e3))
    def test_step_size_bounded_by_lr(self, seed, scale):
        """Adam's bias-corrected first step is ≈ lr per coordinate,
        whatever the gradient magnitude — the scale-invariance property."""
        p = param_with_grad(seed, grad_scale=0.0)
        g = np.random.default_rng(seed + 1).standard_normal(p.data.shape)
        p.grad = (g * scale).astype(np.float32)
        before = p.data.copy()
        Adam([p], lr=0.01).step()
        step = np.abs(p.data - before)
        # components must dominate Adam's eps for the ≈lr property to hold
        big = np.abs(p.grad) > 1e-4
        assert (step <= 0.0101).all()
        assert (step[big] >= 0.0099).all()

    @settings(max_examples=20, deadline=None)
    @given(seed=st.integers(0, 1000))
    def test_no_update_without_grad(self, seed):
        p = param_with_grad(seed)
        p.grad = None
        before = p.data.copy()
        Adam([p], lr=0.1).step()
        np.testing.assert_array_equal(p.data, before)
