"""FLOP accounting."""

import numpy as np
import pytest

from repro.nn import functional as F
from repro.nn.models import CNN2Layer, MLP, resnet20, resnet32, vgg11
from repro.nn.profiler import FlopCounter, count_flops, flops_forward, flops_training_step
from repro.nn.tensor import Tensor


class TestCounterMechanics:
    def test_inactive_by_default(self):
        x = Tensor(np.zeros((2, 8), dtype=np.float32))
        w = Tensor(np.zeros((4, 8), dtype=np.float32))
        F.linear(x, w)  # must not raise or count anywhere

    def test_nested_counters_restore(self):
        with count_flops() as outer:
            x = Tensor(np.zeros((1, 8), dtype=np.float32))
            w = Tensor(np.zeros((4, 8), dtype=np.float32))
            F.linear(x, w)
            with count_flops() as inner:
                F.linear(x, w)
            F.linear(x, w)
        assert inner.total == 2 * 8 * 4
        assert outer.total == 2 * (2 * 8 * 4)  # inner block not double-counted

    def test_by_kind(self):
        with count_flops() as fc:
            x = Tensor(np.zeros((1, 3, 8, 8), dtype=np.float32))
            w = Tensor(np.zeros((4, 3, 3, 3), dtype=np.float32))
            F.conv2d(x, w, padding=1)
        assert set(fc.by_kind) == {"conv2d"}


class TestKnownCounts:
    def test_linear_exact(self):
        with count_flops() as fc:
            x = Tensor(np.zeros((5, 10), dtype=np.float32))
            w = Tensor(np.zeros((7, 10), dtype=np.float32))
            F.linear(x, w)
        assert fc.total == 2 * 5 * 10 * 7

    def test_conv_exact(self):
        # N=2, OC=4, out 8x8, C=3, k=3 → 2*2*4*64*27
        with count_flops() as fc:
            x = Tensor(np.zeros((2, 3, 8, 8), dtype=np.float32))
            w = Tensor(np.zeros((4, 3, 3, 3), dtype=np.float32))
            F.conv2d(x, w, stride=1, padding=1)
        assert fc.total == 2 * 2 * 4 * 64 * 3 * 9

    def test_mlp_model(self):
        m = MLP(8, 4, hidden=(16,), seed=0)
        got = flops_forward(m, (1, 8))
        assert got == 2 * 8 * 16 + 2 * 16 * 4


class TestModelScaling:
    def test_flops_scale_with_batch(self):
        m = resnet20(seed=0, width_mult=0.25)
        f1 = flops_forward(m, (1, 3, 8, 8))
        f4 = flops_forward(m, (4, 3, 8, 8))
        assert abs(f4 - 4 * f1) / f4 < 0.01

    def test_depth_ordering(self):
        f20 = flops_forward(resnet20(seed=0, width_mult=0.25), (1, 3, 8, 8))
        f32 = flops_forward(resnet32(seed=0, width_mult=0.25), (1, 3, 8, 8))
        assert f32 > 1.3 * f20

    def test_vgg_heavier_than_resnet(self):
        fv = flops_forward(vgg11(seed=0, width_mult=0.125, image_size=8), (1, 3, 8, 8))
        fr = flops_forward(resnet20(seed=0, width_mult=0.25), (1, 3, 8, 8))
        assert fv > fr

    def test_paper_scale_resnet20_flops(self):
        """CIFAR ResNet-20 is ~41 MFLOPs/image (2 FLOPs per MAC)."""
        f = flops_forward(resnet20(seed=0), (1, 3, 32, 32))
        assert 70e6 < f < 100e6  # 2x MAC convention + BN/pool overhead

    def test_training_step_is_3x_forward(self):
        m = CNN2Layer(in_channels=3, image_size=8, width_mult=0.25, seed=0)
        assert flops_training_step(m, (2, 3, 8, 8)) == 3 * flops_forward(m, (2, 3, 8, 8))

    def test_eval_restores_training_mode(self):
        m = MLP(8, 4, seed=0)
        m.train()
        flops_forward(m, (1, 8))
        assert m.training
