"""Property-based tests of the autograd engine (hypothesis).

These sweep random shapes/values through the core invariants: gradients
match finite differences, softmax is a distribution, serialization is
lossless, broadcasting reductions conserve gradient mass.
"""

import numpy as np
from hypothesis import given, settings, strategies as st

from repro.nn import functional as F
from repro.nn.tensor import Tensor

from tests.helpers import numeric_grad


shapes = st.tuples(st.integers(1, 4), st.integers(1, 5))
seeds = st.integers(0, 10_000)


def tensor_of(shape, seed, scale=1.0):
    g = np.random.default_rng(seed)
    return Tensor((g.standard_normal(shape) * scale).astype(np.float32), requires_grad=True)


class TestGradientMass:
    """For y = x.sum(), dy/dx must be exactly ones — regardless of shape
    manipulations in between (reshape/transpose/broadcast are mass-neutral)."""

    @settings(max_examples=30, deadline=None)
    @given(shape=shapes, seed=seeds)
    def test_sum_grad_is_ones(self, shape, seed):
        x = tensor_of(shape, seed)
        x.sum().backward()
        np.testing.assert_array_equal(x.grad, np.ones(shape, dtype=np.float32))

    @settings(max_examples=30, deadline=None)
    @given(shape=shapes, seed=seeds)
    def test_transpose_preserves_grad_mass(self, shape, seed):
        x = tensor_of(shape, seed)
        x.T.sum().backward()
        np.testing.assert_array_equal(x.grad, np.ones(shape, dtype=np.float32))

    @settings(max_examples=30, deadline=None)
    @given(shape=shapes, seed=seeds)
    def test_broadcast_add_grad_counts_uses(self, shape, seed):
        """x broadcast against (k, *shape): each element used k times."""
        x = tensor_of(shape, seed)
        k = 3
        y = Tensor(np.zeros((k, *shape), dtype=np.float32))
        (x + y).sum().backward()
        np.testing.assert_array_equal(x.grad, np.full(shape, k, dtype=np.float32))


class TestSoftmaxProperties:
    @settings(max_examples=40, deadline=None)
    @given(shape=shapes, seed=seeds, scale=st.floats(0.1, 20.0))
    def test_softmax_is_distribution(self, shape, seed, scale):
        x = tensor_of(shape, seed, scale)
        s = F.softmax(x, axis=-1).data
        assert (s >= 0).all()
        np.testing.assert_allclose(s.sum(axis=-1), 1.0, atol=1e-4)

    @settings(max_examples=40, deadline=None)
    @given(shape=shapes, seed=seeds)
    def test_softmax_grad_sums_to_zero(self, shape, seed):
        """Rows of the softmax Jacobian sum to zero: shifting all logits
        equally changes nothing, so any upstream grad maps to a zero-sum
        input grad."""
        x = tensor_of(shape, seed)
        up = np.random.default_rng(seed + 1).standard_normal(shape).astype(np.float32)
        (F.softmax(x, axis=-1) * Tensor(up)).sum().backward()
        np.testing.assert_allclose(x.grad.sum(axis=-1), 0.0, atol=1e-4)

    @settings(max_examples=40, deadline=None)
    @given(n=st.integers(1, 5), c=st.integers(2, 6), seed=seeds)
    def test_cross_entropy_grad_rows_sum_to_zero(self, n, c, seed):
        """softmax − onehot sums to zero per row."""
        x = tensor_of((n, c), seed, 2.0)
        y = np.random.default_rng(seed).integers(0, c, n)
        F.cross_entropy(x, y).backward()
        np.testing.assert_allclose(x.grad.sum(axis=1), 0.0, atol=1e-5)


class TestKLProperties:
    @settings(max_examples=40, deadline=None)
    @given(n=st.integers(1, 4), c=st.integers(2, 6), seed=seeds)
    def test_kl_nonnegative_and_zero_iff_equal(self, n, c, seed):
        g = np.random.default_rng(seed)
        t = (g.standard_normal((n, c)) * 3).astype(np.float32)
        s = Tensor((g.standard_normal((n, c)) * 3).astype(np.float32), requires_grad=True)
        assert F.kl_div_with_logits(t, s).item() >= -1e-6
        same = Tensor(t.copy(), requires_grad=True)
        assert abs(F.kl_div_with_logits(t, same).item()) < 1e-5

    @settings(max_examples=25, deadline=None)
    @given(n=st.integers(1, 3), c=st.integers(2, 5), seed=seeds)
    def test_kl_grad_matches_numeric(self, n, c, seed):
        g = np.random.default_rng(seed)
        t = (g.standard_normal((n, c)) * 2).astype(np.float32)
        s = Tensor((g.standard_normal((n, c)) * 2).astype(np.float32), requires_grad=True)

        def f():
            return F.kl_div_with_logits(t, s)

        f().backward()
        num = numeric_grad(f, s)
        np.testing.assert_allclose(s.grad, num, atol=3e-2, rtol=5e-2)


class TestElementwiseGradProperties:
    @settings(max_examples=25, deadline=None)
    @given(shape=shapes, seed=seeds)
    def test_mul_grad_is_partner(self, shape, seed):
        a = tensor_of(shape, seed)
        b = tensor_of(shape, seed + 1)
        (a * b).sum().backward()
        np.testing.assert_allclose(a.grad, b.data, atol=1e-6)
        np.testing.assert_allclose(b.grad, a.data, atol=1e-6)

    @settings(max_examples=25, deadline=None)
    @given(shape=shapes, seed=seeds)
    def test_chain_rule_scaling(self, shape, seed):
        """d/dx of (k·x).sum() is k for any constant k."""
        x = tensor_of(shape, seed)
        (x * 2.5).sum().backward()
        np.testing.assert_allclose(x.grad, np.full(shape, 2.5, dtype=np.float32))

    @settings(max_examples=25, deadline=None)
    @given(shape=shapes, seed=seeds)
    def test_relu_grad_is_indicator(self, shape, seed):
        x = tensor_of(shape, seed)
        x.relu().sum().backward()
        np.testing.assert_array_equal(x.grad, (x.data > 0).astype(np.float32))
