"""Wire format, state arithmetic and parameter-vector tests (incl. property-based)."""

from collections import OrderedDict

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.nn import Linear, Sequential, ReLU
from repro.nn.models import resnet20
from repro.nn.serialization import (
    add_state,
    average_states,
    dumps_state_dict,
    loads_state_dict,
    parameters_to_vector,
    scale_state,
    state_dict_num_bytes,
    state_dict_num_params,
    subtract_states,
    vector_to_parameters,
    zeros_like_state,
)


def small_model(seed=0):
    return Sequential(Linear(4, 8, rng=np.random.default_rng(seed)), ReLU(), Linear(8, 2, rng=np.random.default_rng(seed + 1)))


class TestWireFormat:
    def test_round_trip_exact(self):
        sd = resnet20(seed=0, width_mult=0.125).state_dict()
        out = loads_state_dict(dumps_state_dict(sd))
        assert list(out) == list(sd)
        for k in sd:
            np.testing.assert_array_equal(out[k], sd[k])
            assert out[k].dtype == sd[k].dtype

    def test_size_formula_matches_payload(self):
        sd = small_model().state_dict()
        assert state_dict_num_bytes(sd) == len(dumps_state_dict(sd))

    def test_num_params(self):
        sd = small_model().state_dict()
        assert state_dict_num_params(sd) == 4 * 8 + 8 + 8 * 2 + 2

    def test_bad_magic(self):
        with pytest.raises(ValueError):
            loads_state_dict(b"NOPE" + b"\x00" * 16)

    def test_unsupported_dtype(self):
        with pytest.raises(TypeError):
            dumps_state_dict({"x": np.zeros(2, dtype=np.complex64)})

    def test_scalar_entry(self):
        sd = OrderedDict(x=np.float32(3.5).reshape(()))
        out = loads_state_dict(dumps_state_dict(sd))
        assert float(out["x"]) == 3.5

    def test_int_buffers_supported(self):
        sd = OrderedDict(steps=np.array([7], dtype=np.int64))
        out = loads_state_dict(dumps_state_dict(sd))
        assert out["steps"][0] == 7

    @settings(max_examples=25, deadline=None)
    @given(
        st.lists(
            st.tuples(
                st.text(min_size=1, max_size=12).filter(lambda s: s.strip()),
                st.lists(st.integers(1, 5), min_size=0, max_size=3),
            ),
            min_size=1,
            max_size=5,
            unique_by=lambda t: t[0],
        ),
        st.randoms(),
    )
    def test_property_round_trip(self, entries, rnd):
        """Arbitrary names/shapes survive serialization byte-exactly."""
        rng = np.random.default_rng(rnd.randint(0, 2**31))
        sd = OrderedDict(
            (name, rng.standard_normal(shape).astype(np.float32)) for name, shape in entries
        )
        out = loads_state_dict(dumps_state_dict(sd))
        assert list(out) == list(sd)
        for k in sd:
            np.testing.assert_array_equal(out[k], sd[k])


class TestStateArithmetic:
    def test_average_uniform(self):
        a = OrderedDict(w=np.array([1.0, 3.0], dtype=np.float32))
        b = OrderedDict(w=np.array([3.0, 5.0], dtype=np.float32))
        avg = average_states([a, b])
        np.testing.assert_allclose(avg["w"], [2.0, 4.0])
        assert avg["w"].dtype == np.float32

    def test_average_weighted(self):
        a = OrderedDict(w=np.array([0.0], dtype=np.float32))
        b = OrderedDict(w=np.array([10.0], dtype=np.float32))
        avg = average_states([a, b], weights=[1.0, 3.0])
        np.testing.assert_allclose(avg["w"], [7.5])

    def test_average_validates(self):
        with pytest.raises(ValueError):
            average_states([])
        a = OrderedDict(w=np.zeros(1, dtype=np.float32))
        with pytest.raises(ValueError):
            average_states([a], weights=[1.0, 2.0])
        with pytest.raises(ValueError):
            average_states([a, a], weights=[0.0, 0.0])

    def test_subtract_and_zeros_and_scale(self):
        a = OrderedDict(w=np.array([3.0], dtype=np.float32))
        b = OrderedDict(w=np.array([1.0], dtype=np.float32))
        np.testing.assert_allclose(subtract_states(a, b)["w"], [2.0])
        np.testing.assert_allclose(zeros_like_state(a)["w"], [0.0])
        np.testing.assert_allclose(scale_state(a, 2.0)["w"], [6.0])

    def test_add_state_in_place(self):
        acc = zeros_like_state(OrderedDict(w=np.zeros(2, dtype=np.float32)))
        add_state(acc, OrderedDict(w=np.array([1.0, 2.0])), weight=0.5)
        np.testing.assert_allclose(acc["w"], [0.5, 1.0])

    @settings(max_examples=20, deadline=None)
    @given(st.integers(2, 6), st.integers(0, 1000))
    def test_property_average_of_identical_is_identity(self, n, seed):
        rng = np.random.default_rng(seed)
        sd = OrderedDict(w=rng.standard_normal(4).astype(np.float32))
        avg = average_states([sd] * n)
        np.testing.assert_allclose(avg["w"], sd["w"], atol=1e-6)

    @settings(max_examples=20, deadline=None)
    @given(st.integers(0, 1000))
    def test_property_average_bounded_by_members(self, seed):
        rng = np.random.default_rng(seed)
        states = [OrderedDict(w=rng.standard_normal(5).astype(np.float32)) for _ in range(4)]
        avg = average_states(states)["w"]
        lo = np.min([s["w"] for s in states], axis=0)
        hi = np.max([s["w"] for s in states], axis=0)
        assert (avg >= lo - 1e-6).all() and (avg <= hi + 1e-6).all()


class TestParameterVector:
    def test_round_trip(self):
        m = small_model(seed=3)
        vec = parameters_to_vector(m)
        m2 = small_model(seed=99)
        vector_to_parameters(vec, m2)
        for (_, p1), (_, p2) in zip(m.named_parameters(), m2.named_parameters()):
            np.testing.assert_allclose(p1.data, p2.data, atol=1e-6)

    def test_wrong_length_raises(self):
        m = small_model()
        with pytest.raises(ValueError):
            vector_to_parameters(np.zeros(3), m)
