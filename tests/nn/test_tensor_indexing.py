"""Indexing edge cases and misc tensor semantics."""

import numpy as np
import pytest

from repro.nn.tensor import Tensor, concatenate, stack

from tests.helpers import check_grads, rand_t


class TestGetitemVariants:
    def test_integer_row(self):
        a = rand_t((4, 3), seed=1)
        check_grads(lambda: (a[2] ** 2).sum(), [a])

    def test_boolean_mask(self):
        a = rand_t((6,), seed=2)
        mask = np.array([True, False, True, False, True, False])
        out = a[mask]
        assert out.shape == (3,)
        out.sum().backward()
        np.testing.assert_array_equal(a.grad, mask.astype(np.float32))

    def test_fancy_index_repeats_accumulate(self):
        """Indexing the same element twice must accumulate its gradient —
        the np.add.at path, where naive assignment would silently drop."""
        a = rand_t((4,), seed=3)
        idx = np.array([1, 1, 2])
        a[idx].sum().backward()
        np.testing.assert_array_equal(a.grad, [0.0, 2.0, 1.0, 0.0])

    def test_negative_index(self):
        a = rand_t((5,), seed=4)
        a[-1].backward()
        np.testing.assert_array_equal(a.grad, [0, 0, 0, 0, 1])

    def test_slice_step(self):
        a = rand_t((6,), seed=5)
        a[::2].sum().backward()
        np.testing.assert_array_equal(a.grad, [1, 0, 1, 0, 1, 0])


class TestStackConcatEdge:
    def test_stack_axis1(self):
        a, b = rand_t((2, 3), seed=6), rand_t((2, 3), seed=7)
        assert stack([a, b], axis=1).shape == (2, 2, 3)

    def test_concat_unequal_lengths(self):
        a, b = rand_t((2, 3), seed=8), rand_t((5, 3), seed=9)
        out = concatenate([a, b], axis=0)
        assert out.shape == (7, 3)
        out.sum().backward()
        np.testing.assert_array_equal(a.grad, np.ones((2, 3)))
        np.testing.assert_array_equal(b.grad, np.ones((5, 3)))

    def test_single_element(self):
        a = rand_t((2, 2), seed=10)
        assert stack([a]).shape == (1, 2, 2)
        assert concatenate([a]).shape == (2, 2)


class TestDtypeInterplay:
    def test_float32_preserved_through_ops(self):
        a = rand_t((3, 3), seed=11)
        for op in (lambda: a + 1, lambda: a * 0.5, lambda: a.exp(), lambda: a.sum()):
            assert op().dtype == np.float32

    def test_python_scalar_does_not_upcast(self):
        a = rand_t((3,), seed=12)
        assert (a * 2.5).dtype == np.float32
        assert (2.5 * a).dtype == np.float32
