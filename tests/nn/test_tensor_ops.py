"""Unit tests for Tensor arithmetic, reductions and shape ops."""

import numpy as np
import pytest

from repro.nn import no_grad
from repro.nn.tensor import Tensor, arange, concatenate, full, ones, stack, tensor, unbroadcast, zeros

from tests.helpers import check_grads, rand_t


class TestConstruction:
    def test_float64_downcast(self):
        t = Tensor(np.zeros(3, dtype=np.float64))
        assert t.dtype == np.float32

    def test_int_preserved(self):
        t = Tensor(np.arange(3))
        assert t.dtype in (np.int64, np.int32)

    def test_factories(self):
        assert zeros(2, 3).shape == (2, 3)
        assert ones((4,)).data.sum() == 4
        assert full((2, 2), 7.0).data[0, 0] == 7.0
        assert arange(5).shape == (5,)
        assert tensor([1.0, 2.0]).shape == (2,)

    def test_item_and_len(self):
        assert tensor([[3.0]]).item() == 3.0
        with pytest.raises(ValueError):
            tensor([1.0, 2.0]).item()
        assert len(zeros(5, 2)) == 5

    def test_repr_mentions_grad(self):
        assert "requires_grad" in repr(zeros(1, requires_grad=True))


class TestArithmetic:
    def test_add_values(self):
        a, b = tensor([1.0, 2.0]), tensor([3.0, 4.0])
        np.testing.assert_allclose((a + b).data, [4.0, 6.0])

    def test_scalar_coercion_both_sides(self):
        a = tensor([2.0])
        np.testing.assert_allclose((a + 1).data, [3.0])
        np.testing.assert_allclose((1 + a).data, [3.0])
        np.testing.assert_allclose((a - 1).data, [1.0])
        np.testing.assert_allclose((1 - a).data, [-1.0])
        np.testing.assert_allclose((a * 3).data, [6.0])
        np.testing.assert_allclose((3 * a).data, [6.0])
        np.testing.assert_allclose((a / 2).data, [1.0])
        np.testing.assert_allclose((2 / a).data, [1.0])

    def test_neg_pow(self):
        a = tensor([2.0, -3.0])
        np.testing.assert_allclose((-a).data, [-2.0, 3.0])
        np.testing.assert_allclose((a ** 2).data, [4.0, 9.0])

    def test_pow_tensor_exponent_rejected(self):
        with pytest.raises(TypeError):
            tensor([2.0]) ** tensor([2.0])

    def test_matmul_2d(self):
        a = tensor([[1.0, 2.0], [3.0, 4.0]])
        b = tensor([[1.0, 0.0], [0.0, 1.0]])
        np.testing.assert_allclose((a @ b).data, a.data)

    @pytest.mark.parametrize("op", ["add", "sub", "mul", "div"])
    def test_elementwise_grads(self, op):
        a = rand_t((3, 4), seed=1)
        b = rand_t((3, 4), seed=2, scale=0.5)
        b.data += 2.0  # keep away from zero for div
        f = {
            "add": lambda: (a + b).sum(),
            "sub": lambda: (a - b).sum(),
            "mul": lambda: (a * b).sum(),
            "div": lambda: (a / b).sum(),
        }[op]
        check_grads(f, [a, b])

    def test_broadcast_grads(self):
        a = rand_t((3, 4), seed=3)
        b = rand_t((4,), seed=4)
        check_grads(lambda: (a * b).sum(), [a, b])

    def test_broadcast_scalar_like(self):
        a = rand_t((2, 3), seed=5)
        b = rand_t((1, 1), seed=6)
        check_grads(lambda: (a + b).sum(), [a, b])

    def test_matmul_grads(self):
        a = rand_t((3, 4), seed=7)
        b = rand_t((4, 2), seed=8)
        check_grads(lambda: (a @ b).sum(), [a, b])

    def test_batched_matmul_grads(self):
        a = rand_t((2, 3, 4), seed=9)
        b = rand_t((2, 4, 2), seed=10)
        check_grads(lambda: (a @ b).sum(), [a, b])


class TestElementwiseFns:
    @pytest.mark.parametrize("name", ["exp", "tanh", "sigmoid", "relu", "abs"])
    def test_grads(self, name):
        a = rand_t((4, 3), seed=11)
        check_grads(lambda: getattr(a, name)().sum(), [a])

    def test_log_sqrt_grads_positive_domain(self):
        a = rand_t((4, 3), seed=12)
        a.data = np.abs(a.data) + 0.5
        check_grads(lambda: a.log().sum(), [a])
        check_grads(lambda: a.sqrt().sum(), [a])

    def test_clip_values_and_grad_mask(self):
        a = tensor([-2.0, 0.5, 2.0])
        a.requires_grad = True
        out = a.clip(-1.0, 1.0)
        np.testing.assert_allclose(out.data, [-1.0, 0.5, 1.0])
        out.sum().backward()
        np.testing.assert_allclose(a.grad, [0.0, 1.0, 0.0])

    def test_relu_values(self):
        a = tensor([-1.0, 0.0, 2.0])
        np.testing.assert_allclose(a.relu().data, [0.0, 0.0, 2.0])


class TestReductions:
    def test_sum_axes(self):
        a = rand_t((2, 3, 4), seed=13)
        assert a.sum().shape == ()
        assert a.sum(axis=1).shape == (2, 4)
        assert a.sum(axis=(0, 2)).shape == (3,)
        assert a.sum(axis=1, keepdims=True).shape == (2, 1, 4)

    @pytest.mark.parametrize("axis,keepdims", [(None, False), (0, False), (1, True), ((0, 1), False)])
    def test_sum_grads(self, axis, keepdims):
        a = rand_t((3, 4), seed=14)
        check_grads(lambda: (a.sum(axis=axis, keepdims=keepdims) ** 2).sum(), [a])

    @pytest.mark.parametrize("axis", [None, 0, 1])
    def test_mean_grads(self, axis):
        a = rand_t((3, 4), seed=15)
        check_grads(lambda: (a.mean(axis=axis) ** 2).sum(), [a])

    def test_max_values(self):
        a = tensor([[1.0, 5.0], [7.0, 2.0]])
        np.testing.assert_allclose(a.max().data, 7.0)
        np.testing.assert_allclose(a.max(axis=0).data, [7.0, 5.0])
        np.testing.assert_allclose(a.min(axis=1).data, [1.0, 2.0])

    def test_max_grad_routes_to_argmax(self):
        a = tensor([[1.0, 5.0], [7.0, 2.0]])
        a.requires_grad = True
        a.max(axis=1).sum().backward()
        np.testing.assert_allclose(a.grad, [[0.0, 1.0], [1.0, 0.0]])

    def test_max_grad_splits_ties(self):
        a = tensor([[3.0, 3.0]])
        a.requires_grad = True
        a.max(axis=1).sum().backward()
        np.testing.assert_allclose(a.grad, [[0.5, 0.5]])

    def test_argmax(self):
        a = tensor([[1.0, 5.0], [7.0, 2.0]])
        np.testing.assert_array_equal(a.argmax(axis=1), [1, 0])


class TestShapeOps:
    def test_reshape_grads(self):
        a = rand_t((2, 6), seed=16)
        check_grads(lambda: (a.reshape(3, 4) ** 2).sum(), [a])

    def test_flatten_from(self):
        a = rand_t((2, 3, 4), seed=17)
        assert a.flatten_from(1).shape == (2, 12)

    def test_transpose_default_and_axes(self):
        a = rand_t((2, 3, 4), seed=18)
        assert a.T.shape == (4, 3, 2)
        assert a.transpose(1, 0, 2).shape == (3, 2, 4)
        check_grads(lambda: (a.transpose(2, 0, 1) ** 2).sum(), [a])

    def test_getitem_grads(self):
        a = rand_t((4, 5), seed=19)
        check_grads(lambda: (a[1:3, ::2] ** 2).sum(), [a])

    def test_pad2d(self):
        a = rand_t((1, 1, 3, 3), seed=20)
        padded = a.pad2d(2)
        assert padded.shape == (1, 1, 7, 7)
        assert float(padded.data[0, 0, 0, 0]) == 0.0
        check_grads(lambda: (a.pad2d(1) ** 2).sum(), [a])
        assert a.pad2d(0) is a

    def test_stack_and_concatenate_grads(self):
        a = rand_t((2, 3), seed=21)
        b = rand_t((2, 3), seed=22)
        check_grads(lambda: (stack([a, b], axis=0) ** 2).sum(), [a, b])
        check_grads(lambda: (concatenate([a, b], axis=1) ** 2).sum(), [a, b])


class TestUnbroadcast:
    def test_noop_when_same_shape(self):
        g = np.ones((2, 3))
        assert unbroadcast(g, (2, 3)) is g

    def test_leading_axis_sum(self):
        g = np.ones((5, 2, 3))
        np.testing.assert_allclose(unbroadcast(g, (2, 3)), np.full((2, 3), 5.0))

    def test_kept_axis_sum(self):
        g = np.ones((2, 3))
        np.testing.assert_allclose(unbroadcast(g, (1, 3)), [[2.0, 2.0, 2.0]])

    def test_scalar_target(self):
        g = np.ones((4, 4))
        np.testing.assert_allclose(unbroadcast(g, ()), 16.0)


class TestGradMode:
    def test_no_grad_builds_no_graph(self):
        a = rand_t((2, 2), seed=23)
        with no_grad():
            out = a * 2
        assert out._backward_fn is None and out._is_leaf

    def test_detach(self):
        a = rand_t((2, 2), seed=24)
        d = a.detach()
        assert not d.requires_grad
        assert d.data is a.data  # shared storage
