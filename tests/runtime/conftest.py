"""Fixtures for the execution-runtime tests: a micro federation that keeps
serial-vs-parallel parity runs in the seconds range."""

from __future__ import annotations

import functools

import pytest

from repro.data import IIDPartitioner
from repro.data.federated import build_federated_dataset
from repro.data.synthetic import SyntheticImageDataset, SyntheticSpec
from repro.nn.models import build_model


@pytest.fixture(scope="session")
def micro_fed():
    spec = SyntheticSpec(num_classes=4, channels=1, image_size=8, noise_std=0.25)
    world = SyntheticImageDataset(spec, seed=0)
    return build_federated_dataset(
        world,
        num_clients=6,
        n_train=240,
        n_test=60,
        n_public=60,
        alpha=0.5,
        seed=0,
    )


@pytest.fixture(scope="session")
def micro_fed_equal():
    # Equal shard sizes (IID split of a divisible corpus): every sampled
    # cohort shares a batch schedule, so BatchedExecutor can stack it whole.
    spec = SyntheticSpec(num_classes=4, channels=1, image_size=8, noise_std=0.25)
    world = SyntheticImageDataset(spec, seed=0)
    return build_federated_dataset(
        world,
        num_clients=6,
        n_train=240,
        n_test=60,
        n_public=60,
        partitioner=IIDPartitioner(6, seed=0),
        seed=0,
    )


@pytest.fixture(scope="session")
def micro_model_fn():
    # A partial of a module-level function (not a local closure) so that the
    # whole algorithm snapshot — which holds this factory — is picklable and
    # PersistentParallelExecutor can ship it instead of falling back.
    return functools.partial(
        build_model,
        "mlp",
        num_classes=4,
        in_channels=1,
        image_size=8,
        width_mult=0.25,
        seed=1,
    )
