"""Byzantine adversary: attack roles pure in (seed, round, client), the
extended ``--faults`` grammar, per-role payload poisoning semantics, and
bit-identical executor parity under an active attack plan."""

from __future__ import annotations

from collections import Counter, OrderedDict

import numpy as np
import pytest

from repro.fl.algorithms import ALGORITHM_REGISTRY, FLConfig
from repro.runtime.adversary import (
    ATTACK_KINDS,
    LABELFLIP,
    AdversaryPlan,
    AttackSpec,
    poison_states,
)
from repro.runtime.executors import (
    BatchedExecutor,
    ParallelExecutor,
    PersistentParallelExecutor,
    fork_available,
)
from repro.runtime.faults import FaultSpec, parse_fault_spec

needs_fork = pytest.mark.skipif(not fork_available(), reason="needs fork start method")


class TestAttackSpec:
    def test_defaults_are_null(self):
        assert AttackSpec().is_null

    def test_fraction_bounds(self):
        with pytest.raises(ValueError):
            AttackSpec(signflip=1.5)
        with pytest.raises(ValueError):
            AttackSpec(noise=-0.1)

    def test_fractions_must_sum_below_one(self):
        AttackSpec(signflip=0.5, scale=0.5)  # exactly 1 is allowed
        with pytest.raises(ValueError, match="sum"):
            AttackSpec(signflip=0.6, scale=0.6)

    def test_parameter_validation(self):
        with pytest.raises(ValueError):
            AttackSpec(noise_std=0.0)
        with pytest.raises(ValueError):
            AttackSpec(scale_lambda=float("inf"))

    def test_fractions_follow_canonical_role_order(self):
        spec = AttackSpec(signflip=0.1, freerider=0.2)
        assert tuple(kind for kind, _ in spec.fractions()) == ATTACK_KINDS


class TestGrammar:
    def test_attack_keys_parse(self):
        spec = parse_fault_spec("signflip=0.2,scale=10@0.1")
        assert spec.attacks.signflip == 0.2
        assert spec.attacks.scale == 0.1
        assert spec.attacks.scale_lambda == 10.0
        # attacks poison payloads, not timing: the infra plan stays null
        assert spec.is_null
        assert not spec.attacks.is_null

    def test_param_at_fraction_form(self):
        spec = parse_fault_spec("noise=0.5@0.25")
        assert spec.attacks.noise == 0.25
        assert spec.attacks.noise_std == 0.5

    def test_plain_fraction_form(self):
        spec = parse_fault_spec("freerider=0.3,labelflip=0.1")
        assert spec.attacks.freerider == 0.3
        assert spec.attacks.labelflip == 0.1

    def test_vocabularies_mix_freely(self):
        spec = parse_fault_spec("dropout=0.3,signflip=0.2,loss=0.1")
        assert spec.dropout == 0.3 and spec.uplink_loss == 0.1
        assert spec.attacks.signflip == 0.2
        assert not spec.is_null

    def test_param_form_rejected_on_fraction_only_keys(self):
        with pytest.raises(ValueError, match="param@fraction"):
            parse_fault_spec("signflip=10@0.1")

    def test_unknown_key_error_lists_both_vocabularies(self):
        with pytest.raises(ValueError) as err:
            parse_fault_spec("signflop=0.2")
        msg = str(err.value)
        assert "signflop" in msg
        assert "dropout" in msg  # infrastructure vocabulary
        assert "signflip" in msg  # attack vocabulary


class TestAdversaryPlan:
    SPEC = AttackSpec(signflip=0.2, scale=0.1, freerider=0.1)

    def test_requires_attack_spec(self):
        with pytest.raises(TypeError):
            AdversaryPlan(FaultSpec(), seed=0)

    def test_deterministic_and_order_independent(self):
        a = AdversaryPlan(self.SPEC, seed=7)
        b = AdversaryPlan(self.SPEC, seed=7)
        keys = [(r, c) for r in range(4) for c in range(8)]
        forward = [a.role(r, c) for r, c in keys]
        backward = [b.role(r, c) for r, c in reversed(keys)]
        assert forward == list(reversed(backward))
        assert forward == [a.role(r, c) for r, c in keys]

    def test_seed_changes_schedule(self):
        keys = [(r, c) for r in range(6) for c in range(10)]
        a = AdversaryPlan(self.SPEC, seed=0)
        b = AdversaryPlan(self.SPEC, seed=1)
        assert [a.role(*k) for k in keys] != [b.role(*k) for k in keys]

    def test_role_rates_roughly_match_fractions(self):
        plan = AdversaryPlan(self.SPEC, seed=11)
        roles = Counter(plan.role(r, c) for r in range(50) for c in range(20))
        total = 1000
        assert 0.15 < roles["signflip"] / total < 0.25
        assert 0.06 < roles["scale"] / total < 0.14
        assert 0.06 < roles["freerider"] / total < 0.14
        assert 0.55 < roles[None] / total < 0.65

    def test_null_spec_is_always_honest(self):
        plan = AdversaryPlan(AttackSpec(), seed=3)
        assert all(plan.role(r, c) is None for r in range(5) for c in range(5))

    def test_attack_rng_independent_of_role_draw(self):
        """The noise/permutation stream must not perturb role assignment
        (separate lanes), and must itself be pure in (seed, round, client)."""
        plan = AdversaryPlan(self.SPEC, seed=5)
        before = [plan.role(r, c) for r in range(4) for c in range(6)]
        draws = plan.attack_rng(2, 3).normal(size=8)
        np.testing.assert_array_equal(draws, plan.attack_rng(2, 3).normal(size=8))
        assert before == [plan.role(r, c) for r in range(4) for c in range(6)]


def _state(seed=0):
    rng = np.random.default_rng(seed)
    return OrderedDict(
        w=rng.normal(size=(3, 4)).astype(np.float32),
        b=rng.normal(size=4).astype(np.float32),
        steps=np.array(7, dtype=np.int64),
    )


def _poisoned(role, spec=None, reference=True, seed_state=1):
    plan = AdversaryPlan(spec or AttackSpec(**{role: 0.5}), seed=0)
    ref = _state(0) if reference else None
    states = {"state": _state(seed_state)}
    poison_states(role, states, ref, plan, round_idx=2, client_id=3)
    return states["state"], _state(seed_state), ref


class TestPoisonStates:
    def test_signflip_reflects_through_reference(self):
        out, honest, ref = _poisoned("signflip")
        np.testing.assert_allclose(out["w"], 2.0 * ref["w"] - honest["w"], rtol=1e-6)

    def test_signflip_without_reference_negates(self):
        out, honest, _ = _poisoned("signflip", reference=False)
        np.testing.assert_array_equal(out["w"], -honest["w"])

    def test_scale_amplifies_the_delta(self):
        spec = AttackSpec(scale=0.5, scale_lambda=5.0)
        out, honest, ref = _poisoned("scale", spec=spec)
        expected = ref["b"] + 5.0 * (
            honest["b"].astype(np.float64) - ref["b"].astype(np.float64)
        )
        np.testing.assert_allclose(out["b"], expected.astype(np.float32), rtol=1e-6)

    def test_noise_is_deterministic(self):
        a, honest, _ = _poisoned("noise")
        b, _, _ = _poisoned("noise")
        np.testing.assert_array_equal(a["w"], b["w"])
        assert not np.array_equal(a["w"], honest["w"])

    def test_freerider_uploads_the_reference_verbatim(self):
        out, _, ref = _poisoned("freerider")
        np.testing.assert_array_equal(out["w"], ref["w"])
        np.testing.assert_array_equal(out["b"], ref["b"])

    def test_freerider_without_reference_uploads_zeros(self):
        out, _, _ = _poisoned("freerider", reference=False)
        assert not out["w"].any() and not out["b"].any()

    def test_logitcorrupt_permutes_but_preserves_values(self):
        out, honest, _ = _poisoned("logitcorrupt")
        assert not np.array_equal(out["w"], honest["w"])
        np.testing.assert_array_equal(np.sort(out["w"].ravel()), np.sort(honest["w"].ravel()))

    def test_labelflip_is_a_payload_noop(self):
        out, honest, _ = _poisoned(LABELFLIP)
        for k in honest:
            np.testing.assert_array_equal(out[k], honest[k])

    def test_non_float_tensors_pass_through(self):
        out, honest, _ = _poisoned("signflip")
        np.testing.assert_array_equal(out["steps"], honest["steps"])
        assert out["steps"].dtype == honest["steps"].dtype

    def test_mismatched_payload_attacked_in_its_own_space(self):
        """A delta-shaped payload (keys differ from the global state) must
        not be anchored on the reference — signflip becomes plain negation."""
        plan = AdversaryPlan(AttackSpec(signflip=0.5), seed=0)
        honest = OrderedDict(delta=np.ones(4, dtype=np.float32))
        states = {"control": OrderedDict(honest)}
        poison_states("signflip", states, _state(0), plan, 1, 1)
        np.testing.assert_array_equal(states["control"]["delta"], -honest["delta"])

    def test_unknown_role_rejected(self):
        plan = AdversaryPlan(AttackSpec(signflip=0.5), seed=0)
        with pytest.raises(ValueError, match="unknown attack role"):
            poison_states("gaslight", {"state": _state()}, None, plan, 0, 0)


def _config(**overrides):
    base = dict(
        rounds=2,
        sample_ratio=0.5,
        local_epochs=1,
        batch_size=16,
        lr=0.05,
        seed=0,
        distill_epochs=1,
    )
    base.update(overrides)
    return FLConfig(**base)


ATTACKS = "signflip=0.2,scale=10@0.1,labelflip=0.2,freerider=0.1"


class TestRuntimeWiring:
    def test_attack_only_spec_never_materializes_the_clock(
        self, micro_fed, micro_model_fn
    ):
        algo = ALGORITHM_REGISTRY.get("fedavg")(
            micro_model_fn, micro_fed, _config(faults="signflip=0.3")
        )
        rt = algo.runtime
        assert rt.adversarial and not rt.faulty
        assert rt.clock is None
        assert rt.attack_role(0, 0) in (None,) + ATTACK_KINDS

    def test_defenseless_attacked_run_differs_from_clean(
        self, micro_fed, micro_model_fn
    ):
        make = ALGORITHM_REGISTRY.get("fedavg")
        clean = make(micro_model_fn, micro_fed, _config())
        attacked = make(micro_model_fn, micro_fed, _config(faults="signflip=0.4"))
        assert clean.run().fingerprint() != attacked.run().fingerprint()

    def test_history_meta_records_defense(self, micro_fed, micro_model_fn):
        algo = ALGORITHM_REGISTRY.get("fedavg")(
            micro_model_fn, micro_fed, _config(defense="trimmed=0.3", norm_ceiling=50.0)
        )
        history = algo.run()
        rt = history.meta["runtime"]
        assert rt["defense"] == "trimmed=0.3"
        assert rt["norm_ceiling"] == 50.0


def _assert_same_run(a, b):
    ha, hb = a.run(), b.run()
    assert ha.fingerprint() == hb.fingerprint()
    sa, sb = a.global_model.state_dict(), b.global_model.state_dict()
    assert list(sa) == list(sb)
    for k in sa:
        np.testing.assert_array_equal(sa[k], sb[k], err_msg=k)


class TestExecutorParityUnderAttack:
    """The acceptance property: an attacked (and defended) run is
    bit-identical across every executor backend."""

    @needs_fork
    @pytest.mark.parametrize("name", ["fedavg", "scaffold"])
    def test_serial_vs_parallel(self, name, micro_fed, micro_model_fn):
        make = ALGORITHM_REGISTRY.get(name)
        cfg = dict(faults=ATTACKS, defense="trimmed=0.3")
        serial = make(micro_model_fn, micro_fed, _config(workers=0, **cfg))
        parallel = make(micro_model_fn, micro_fed, _config(workers=4, **cfg))
        assert isinstance(parallel.runtime.executor, ParallelExecutor)
        _assert_same_run(serial, parallel)

    @needs_fork
    def test_serial_vs_persistent(self, micro_fed, micro_model_fn):
        make = ALGORITHM_REGISTRY.get("fedavg")
        cfg = dict(faults=ATTACKS, defense="median")
        serial = make(micro_model_fn, micro_fed, _config(**cfg))
        persistent = make(
            micro_model_fn, micro_fed, _config(workers=4, executor="persistent", **cfg)
        )
        assert isinstance(persistent.runtime.executor, PersistentParallelExecutor)
        _assert_same_run(serial, persistent)

    def test_serial_vs_batched(self, micro_fed_equal, micro_model_fn):
        """Labelflip clients must peel out of the stacked cohort (they train
        a different label view) without breaking bit-parity."""
        make = ALGORITHM_REGISTRY.get("fedavg")
        cfg = dict(faults=ATTACKS)
        serial = make(micro_model_fn, micro_fed_equal, _config(**cfg))
        batched = make(
            micro_model_fn, micro_fed_equal, _config(executor="batched", **cfg)
        )
        assert isinstance(batched.runtime.executor, BatchedExecutor)
        _assert_same_run(serial, batched)

    def test_serial_vs_batched_fedkemf(self, micro_fed_equal, micro_model_fn):
        from repro.core import FedKEMF

        cfg = dict(faults="signflip=0.2,logitcorrupt=0.2,labelflip=0.2")
        serial = FedKEMF(
            micro_model_fn, micro_fed_equal, _config(**cfg),
            local_model_fns=micro_model_fn,
        )
        batched = FedKEMF(
            micro_model_fn, micro_fed_equal, _config(executor="batched", **cfg),
            local_model_fns=micro_model_fn,
        )
        _assert_same_run(serial, batched)


class TestResumeUnderAttack:
    def test_attacked_defended_resume_is_bit_identical(
        self, micro_fed, micro_model_fn, tmp_path
    ):
        """Autoclip carries mutable cross-round state (the RPL905 case):
        a run killed mid-schedule must resume onto the straight-through
        fingerprint, attacks and all."""
        make = ALGORITHM_REGISTRY.get("fedavg")
        cfg = dict(
            rounds=4, faults=ATTACKS, defense="autoclip", norm_ceiling=1e6
        )
        straight = make(micro_model_fn, micro_fed, _config(**cfg))
        full = straight.run()

        make(micro_model_fn, micro_fed, _config(**cfg)).run(
            2, checkpoint_dir=tmp_path
        )
        resumed = make(micro_model_fn, micro_fed, _config(**cfg))
        got = resumed.run(4, checkpoint_dir=tmp_path, resume_from=True)

        assert got.fingerprint() == full.fingerprint()
        sa = straight.global_model.state_dict()
        sb = resumed.global_model.state_dict()
        for k in sa:
            np.testing.assert_array_equal(sa[k], sb[k], err_msg=k)
