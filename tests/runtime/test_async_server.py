"""Unit tests for the buffered-aggregation primitives.

The :mod:`repro.runtime.async_server` pieces — staleness weights, policy
construction, the event-queue buffer — are exercised here in isolation;
end-to-end regime behaviour (parity with sync, divergence, resume) lives
in ``tests/fl/test_async_parity.py``.
"""

from __future__ import annotations

import pytest

from repro.runtime.async_server import (
    AGGREGATION_KINDS,
    BufferedAggregation,
    SyncAggregation,
    UpdateBuffer,
    make_aggregation_policy,
    staleness_weight,
)
from repro.runtime.executors import ClientUpdate
from repro.runtime.runtime import (
    FAILURE_REASONS,
    STALE_EVICTED,
    RoundOutcome,
    ordered_failure_counts,
)


def _update(cid: int) -> ClientUpdate:
    return ClientUpdate(client_id=cid, states={}, weight=float(cid + 1))


class TestStalenessWeight:
    def test_fresh_is_exactly_one(self):
        # the parity anchor: any alpha gives exactly 1.0 at staleness 0
        for alpha in (0.0, 0.5, 1.0, 3.7):
            assert staleness_weight(0, alpha) == 1.0

    def test_alpha_zero_is_uniform(self):
        # x ** -0.0 == 1.0 exactly in IEEE arithmetic — not approximately
        for s in range(20):
            assert staleness_weight(s, 0.0) == 1.0

    def test_polynomial_decay(self):
        assert staleness_weight(1, 1.0) == pytest.approx(0.5)
        assert staleness_weight(3, 0.5) == pytest.approx(0.5)
        assert staleness_weight(5, 0.5) < staleness_weight(2, 0.5) < 1.0

    def test_rejects_negatives(self):
        with pytest.raises(ValueError, match="staleness"):
            staleness_weight(-1, 0.5)
        with pytest.raises(ValueError, match="alpha"):
            staleness_weight(1, -0.5)


class TestPolicies:
    def test_factory_kinds(self):
        assert AGGREGATION_KINDS == ("sync", "buffered")
        assert isinstance(make_aggregation_policy("sync"), SyncAggregation)
        assert isinstance(make_aggregation_policy(None), SyncAggregation)
        assert isinstance(make_aggregation_policy(" Buffered "), BufferedAggregation)
        with pytest.raises(ValueError, match="aggregation"):
            make_aggregation_policy("fedbuff")

    def test_buffered_flags(self):
        assert not SyncAggregation().buffered
        policy = BufferedAggregation(buffer_size=3, staleness_alpha=1.0)
        assert policy.buffered
        assert policy.weight(1) == pytest.approx(0.5)

    def test_validation(self):
        with pytest.raises(ValueError, match="buffer_size"):
            BufferedAggregation(buffer_size=0)
        with pytest.raises(ValueError, match="staleness_alpha"):
            BufferedAggregation(staleness_alpha=-1.0)
        with pytest.raises(ValueError, match="max_staleness"):
            BufferedAggregation(max_staleness=-1)


class TestUpdateBuffer:
    def make(self, **kw) -> UpdateBuffer:
        defaults = dict(buffer_size=2, staleness_alpha=0.5)
        defaults.update(kw)
        return UpdateBuffer(BufferedAggregation(**defaults))

    def test_drains_in_arrival_order(self):
        buf = self.make()
        buf.push(0, 3, 5.0, _update(3))
        buf.push(0, 1, 1.0, _update(1))
        buf.push(0, 2, 3.0, _update(2))
        merges, evicted = buf.drain(0, target_k=2)
        assert [m.update.client_id for m in merges] == [1, 2]
        assert not evicted
        assert len(buf) == 1  # client 3 stays pending

    def test_ties_break_on_client_id(self):
        buf = self.make()
        for cid in (5, 2, 4):
            buf.push(0, cid, 1.0, _update(cid))
        merges, _ = buf.drain(0, target_k=None)
        assert [m.update.client_id for m in merges] == [2, 4, 5]

    def test_staleness_and_discount(self):
        buf = self.make(staleness_alpha=1.0)
        buf.push(0, 0, 4.0, _update(0))  # will arrive late
        buf.advance(1.0)
        buf.push(1, 1, 0.5, _update(1))
        merges, _ = buf.drain(1, target_k=None)
        by_cid = {m.update.client_id: m for m in merges}
        assert by_cid[1].staleness == 0 and by_cid[1].discount == 1.0
        assert by_cid[0].staleness == 1 and by_cid[0].discount == pytest.approx(0.5)
        # discounted() rescales the aggregation weight, not the original
        assert by_cid[0].discounted().weight == pytest.approx(1.0 * 0.5)
        assert by_cid[0].update.weight == 1.0

    def test_fresh_merge_wait_is_the_exact_rel_time(self):
        # (now + t) - now is not IEEE-exactly t; the buffer must hand the
        # round loop the original rel_time for fresh merges (sync parity)
        buf = self.make()
        buf.advance(0.1)  # virtual_now = 0.1, a value with no exact binary rep
        t = 0.30000000000000004
        buf.push(1, 0, t, _update(0))
        merges, _ = buf.drain(1, target_k=None)
        assert merges[0].wait_s == t

    def test_max_staleness_eviction(self):
        buf = self.make(max_staleness=1)
        buf.push(0, 0, 9.0, _update(0))
        buf.push(2, 1, 0.1, _update(1))
        merges, evicted = buf.drain(2, target_k=2)
        assert [m.update.client_id for m in merges] == [1]
        assert evicted == {0: 2}  # staleness 2 > bound 1
        assert len(buf) == 0

    def test_eviction_does_not_consume_capacity(self):
        buf = self.make(buffer_size=1, max_staleness=0)
        buf.push(0, 0, 0.5, _update(0))  # becomes stale next round
        buf.advance(1.0)
        buf.push(1, 1, 0.5, _update(1))
        merges, evicted = buf.drain(1, target_k=1)
        # the stale head is evicted AND the fresh update still fills K=1
        assert evicted == {0: 1}
        assert [m.update.client_id for m in merges] == [1]

    def test_flush_drains_everything(self):
        buf = self.make(buffer_size=1)
        for cid in range(4):
            buf.push(0, cid, float(cid), _update(cid))
        merges, _ = buf.drain(0, target_k=None)
        assert len(merges) == 4 and len(buf) == 0

    def test_state_roundtrip_preserves_drain_order(self):
        buf = self.make(max_staleness=5)
        for cid, t in ((4, 2.0), (0, 7.0), (2, 2.0)):
            buf.push(0, cid, t, _update(cid))
        buf.advance(1.5)
        buf.push(1, 1, 0.25, _update(1))
        snapshot = buf.state()

        clone = self.make(max_staleness=5)
        clone.load_state(snapshot)
        assert clone.version == buf.version
        assert clone.virtual_now == buf.virtual_now
        assert clone.state() == snapshot
        a, _ = buf.drain(3, target_k=None)
        b, _ = clone.drain(3, target_k=None)
        assert [m.update.client_id for m in a] == [m.update.client_id for m in b]
        assert [m.wait_s for m in a] == [m.wait_s for m in b]

    def test_state_is_a_copy_not_an_alias(self):
        buf = self.make()
        update = ClientUpdate(client_id=0, states={"state": {"w": [1.0]}}, weight=1.0)
        buf.push(0, 0, 1.0, update)
        snapshot = buf.state()
        update.states["state"]["w"][0] = 99.0
        assert snapshot["pending"][0]["update"]["states"]["state"]["w"][0] == 1.0


class TestFailureTaxonomy:
    def test_stale_evicted_in_canonical_order(self):
        assert STALE_EVICTED == "stale-evicted"
        assert STALE_EVICTED in FAILURE_REASONS
        # taxonomy order: injected reasons first, terminal crash last
        assert FAILURE_REASONS.index(STALE_EVICTED) < FAILURE_REASONS.index("worker-crash")

    def test_failure_counts_deterministic_order(self):
        """Regression: counts are keyed in taxonomy order regardless of the
        order failures were recorded in — two equivalent runs render the
        same summary line."""
        a = RoundOutcome(
            round_idx=0,
            failures={1: "surplus", 2: "dropout", 3: STALE_EVICTED, 4: "dropout"},
        )
        b = RoundOutcome(
            round_idx=0,
            failures={4: "dropout", 3: STALE_EVICTED, 2: "dropout", 1: "surplus"},
        )
        assert list(a.failure_counts()) == list(b.failure_counts())
        assert list(a.failure_counts()) == ["dropout", "surplus", STALE_EVICTED]
        assert a.failure_counts() == {"dropout": 2, "surplus": 1, STALE_EVICTED: 1}

    def test_unknown_reasons_sort_lexicographically_after_taxonomy(self):
        counts = ordered_failure_counts(
            ["zz-custom", "dropout", "aa-custom", "deadline"]
        )
        assert list(counts) == ["dropout", "deadline", "aa-custom", "zz-custom"]
