"""Acceptance property of ``--executor batched``: a batched run replays the
serial reference bit-identically — same ``RunHistory.fingerprint()``, same
final global model, same on-device local models — for FedAvg and FedKEMF,
with and without fault injection, whether the stacked path engages or falls
back."""

from __future__ import annotations

import functools

import numpy as np
import pytest

from repro.core import FedKEMF
from repro.fl.algorithms import ALGORITHM_REGISTRY, FLConfig
from repro.nn.batched import batched_enabled
from repro.nn.models import build_model
from repro.runtime.executors import (
    EXECUTOR_KINDS,
    BatchedExecutor,
    ClientUpdate,
    SerialExecutor,
    make_executor,
)


def _config(**overrides):
    base = dict(
        rounds=2,
        sample_ratio=0.5,
        local_epochs=1,
        batch_size=16,
        lr=0.05,
        seed=0,
        distill_epochs=1,
    )
    base.update(overrides)
    return FLConfig(**base)


def _assert_same_run(algo_serial, algo_batched):
    h_serial = algo_serial.run()
    h_batched = algo_batched.run()
    assert h_serial.fingerprint() == h_batched.fingerprint()
    sa = algo_serial.global_model.state_dict()
    sb = algo_batched.global_model.state_dict()
    for k in sa:
        np.testing.assert_array_equal(sa[k], sb[k], err_msg=k)


class TestMakeExecutor:
    def test_kind_registered(self):
        assert "batched" in EXECUTOR_KINDS
        ex = make_executor(kind="batched")
        assert isinstance(ex, BatchedExecutor)
        assert ex.workers == 1

    def test_config_selects_batched(self, micro_fed_equal, micro_model_fn):
        algo = ALGORITHM_REGISTRY.get("fedavg")(
            micro_model_fn, micro_fed_equal, _config(executor="batched")
        )
        assert isinstance(algo.runtime.executor, BatchedExecutor)


class TestFedAvgParity:
    def test_equal_shards_engage_stacked_path(self, micro_fed_equal, micro_model_fn):
        serial = ALGORITHM_REGISTRY.get("fedavg")(
            micro_model_fn, micro_fed_equal, _config()
        )
        batched = ALGORITHM_REGISTRY.get("fedavg")(
            micro_model_fn, micro_fed_equal, _config(executor="batched")
        )
        _assert_same_run(serial, batched)
        # Homogeneous models + equal shards: the whole cohort must stack
        # (unless the oracle escape hatch disabled stacking for this run).
        if batched_enabled():
            assert batched.runtime.executor.last_round_mode == "batched"

    def test_ragged_shards_fall_back(self, micro_fed, micro_model_fn):
        # Dirichlet shards are unequal, so grouping yields singletons; the
        # executor must still reproduce serial bits through its fallback.
        serial = ALGORITHM_REGISTRY.get("fedavg")(micro_model_fn, micro_fed, _config())
        batched = ALGORITHM_REGISTRY.get("fedavg")(
            micro_model_fn, micro_fed, _config(executor="batched")
        )
        _assert_same_run(serial, batched)

    def test_with_faults(self, micro_fed_equal, micro_model_fn):
        faults = "dropout=0.3,loss=0.1"
        serial = ALGORITHM_REGISTRY.get("fedavg")(
            micro_model_fn, micro_fed_equal, _config(faults=faults)
        )
        batched = ALGORITHM_REGISTRY.get("fedavg")(
            micro_model_fn, micro_fed_equal, _config(faults=faults, executor="batched")
        )
        _assert_same_run(serial, batched)

    def test_oracle_escape_hatch(self, micro_fed_equal, micro_model_fn, monkeypatch):
        monkeypatch.setenv("REPRO_BATCHED", "0")
        serial = ALGORITHM_REGISTRY.get("fedavg")(
            micro_model_fn, micro_fed_equal, _config()
        )
        batched = ALGORITHM_REGISTRY.get("fedavg")(
            micro_model_fn, micro_fed_equal, _config(executor="batched")
        )
        _assert_same_run(serial, batched)
        assert batched.runtime.executor.last_round_mode == "serial"

    def test_custom_client_work_falls_back(self, micro_fed_equal, micro_model_fn):
        # FedProx overrides client_work (proximal grad hook) — the default
        # batched hook must decline rather than silently drop the hook.
        serial = ALGORITHM_REGISTRY.get("fedprox")(
            micro_model_fn, micro_fed_equal, _config()
        )
        batched = ALGORITHM_REGISTRY.get("fedprox")(
            micro_model_fn, micro_fed_equal, _config(executor="batched")
        )
        assert batched.client_work_batched(0, []) is None
        _assert_same_run(serial, batched)
        assert batched.runtime.executor.last_round_mode == "serial"


class TestFedKEMFParity:
    def _pair(self, fed, know_fn, local_fns, **cfg_overrides):
        serial = FedKEMF(know_fn, fed, _config(**cfg_overrides), local_model_fns=local_fns)
        batched = FedKEMF(
            know_fn, fed, _config(executor="batched", **cfg_overrides),
            local_model_fns=local_fns,
        )
        return serial, batched

    def _assert_local_models_equal(self, serial, batched):
        for ms, mb in zip(serial.local_models, batched.local_models):
            ss, sb = ms.state_dict(), mb.state_dict()
            for k in ss:
                np.testing.assert_array_equal(ss[k], sb[k], err_msg=k)

    def test_equal_shards_engage_stacked_path(self, micro_fed_equal, micro_model_fn):
        serial, batched = self._pair(micro_fed_equal, micro_model_fn, micro_model_fn)
        _assert_same_run(serial, batched)
        if batched_enabled():
            assert batched.runtime.executor.last_round_mode == "batched"
        self._assert_local_models_equal(serial, batched)

    def test_with_faults(self, micro_fed_equal, micro_model_fn):
        faults = "dropout=0.3,loss=0.1"
        serial, batched = self._pair(
            micro_fed_equal, micro_model_fn, micro_model_fn, faults=faults
        )
        _assert_same_run(serial, batched)
        self._assert_local_models_equal(serial, batched)

    def test_heterogeneous_local_models_mixed_round(self, micro_fed_equal):
        # Table-3 setting: clients deploy different local architectures.
        # Five MLP clients form one stack; the lone CNN client runs serial —
        # the round is "mixed" and still bit-identical.
        know_fn = functools.partial(
            build_model, "mlp", num_classes=4, in_channels=1,
            image_size=8, width_mult=0.25, seed=1,
        )
        cnn_fn = functools.partial(
            build_model, "cnn-2", num_classes=4, in_channels=1,
            image_size=8, width_mult=0.25, seed=2,
        )
        local_fns = [know_fn] * 5 + [cnn_fn]
        serial, batched = self._pair(
            micro_fed_equal, know_fn, local_fns, sample_ratio=1.0
        )
        _assert_same_run(serial, batched)
        if batched_enabled():
            assert batched.runtime.executor.last_round_mode == "mixed"
        self._assert_local_models_equal(serial, batched)

    def test_ragged_shards_fall_back(self, micro_fed, micro_model_fn):
        serial, batched = self._pair(micro_fed, micro_model_fn, micro_model_fn)
        _assert_same_run(serial, batched)
        self._assert_local_models_equal(serial, batched)


class TestBatchedExecutorUnit:
    def test_plain_work_fn_runs_serially(self):
        # Work closures that are not the algorithm-layer partial (no
        # __self__ to unwrap) must run through the serial path untouched.
        calls = []

        def work(cid, payload):
            calls.append(cid)
            return ClientUpdate(client_id=cid)

        ex = BatchedExecutor()
        updates = ex.run_round(work, [(3, {}), (1, {})])
        assert [u.client_id for u in updates] == [3, 1]
        assert calls == [3, 1]
        assert ex.last_round_mode == "serial"
        assert ex.last_round_failures == {}

    def test_results_in_task_order_when_mixed(self, monkeypatch):
        monkeypatch.setenv("REPRO_BATCHED", "1")  # immune to the oracle run

        class FakeAlgo:
            def client_work(self, round_idx, cid, payload):
                return ClientUpdate(client_id=cid, weight=-1.0)

            def client_work_batched(self, round_idx, tasks):
                # Handle every even client, decline the odd ones.
                return {
                    cid: ClientUpdate(client_id=cid, weight=2.0)
                    for cid, _ in tasks
                    if cid % 2 == 0
                }

        algo = FakeAlgo()
        work = functools.partial(algo.client_work, 0)
        ex = BatchedExecutor()
        updates = ex.run_round(work, [(0, {}), (1, {}), (2, {})])
        assert [u.client_id for u in updates] == [0, 1, 2]
        assert [u.weight for u in updates] == [2.0, -1.0, 2.0]
        assert ex.last_round_mode == "mixed"

    def test_context_manager_protocol(self):
        with make_executor(kind="batched") as ex:
            assert isinstance(ex, BatchedExecutor)
        with pytest.raises(ValueError):
            make_executor(kind="bogus")

    def test_serial_reference_unchanged(self):
        # The oracle the batched path is measured against.
        ex = SerialExecutor()
        updates = ex.run_round(
            lambda cid, payload: ClientUpdate(client_id=cid), [(5, {})]
        )
        assert [u.client_id for u in updates] == [5]
