"""VirtualClock unit tests — the per-architecture FLOP cache key.

The cache must be keyed on the full architecture signature (ordered
``(name, shape, dtype)`` tuples): a ``(class name, num_bytes)`` key
collides for same-size layout variants of one model family and would hand
one variant the other's FLOP count.
"""

from __future__ import annotations

import pytest

from repro.fl.devices import DEVICE_TIERS
from repro.nn.models.mlp import MLP
from repro.nn.serialization import state_dict_signature
from repro.runtime.clock import VirtualClock


def _clock(num_clients: int = 2) -> VirtualClock:
    # batch of 4 samples, 2x2x2 images → flattens to 8 features
    return VirtualClock(
        profiles=[DEVICE_TIERS[0]] * num_clients,
        batch_input_shape=(4, 2, 2, 2),
    )


def test_same_size_layout_variants_get_distinct_cache_entries():
    # Both hold exactly 81 parameters (8*5+5 + 5*6+6 == 8*4+4 + 4*9+9),
    # so a byte-count key would collide — but their per-step FLOPs differ.
    a = MLP(8, num_classes=6, hidden=(5,), seed=0)
    b = MLP(8, num_classes=9, hidden=(4,), seed=0)
    assert sum(p.data.size for p in a.parameters()) == sum(
        p.data.size for p in b.parameters()
    )

    clock = _clock()
    flops_a = clock._flops_step(a)
    flops_b = clock._flops_step(b)
    assert len(clock._flops_cache) == 2
    assert flops_a != flops_b


def test_cache_hits_for_identical_architecture():
    clock = _clock()
    a = MLP(8, num_classes=6, hidden=(5,), seed=0)
    b = MLP(8, num_classes=6, hidden=(5,), seed=99)  # different weights
    assert clock._flops_step(a) == clock._flops_step(b)
    assert len(clock._flops_cache) == 1  # one profile run per architecture


def test_signature_orders_and_types():
    sig = state_dict_signature(MLP(8, num_classes=6, hidden=(5,), seed=0).state_dict())
    assert all(len(entry) == 3 for entry in sig)
    names = [name for name, _, _ in sig]
    assert names == sorted(names, key=names.index)  # insertion order kept
    shapes = {shape for _, shape, _ in sig}
    assert (5, 8) in shapes or (8, 5) in shapes


def test_client_time_scales_with_slowdown():
    clock = _clock()
    model = MLP(8, num_classes=6, hidden=(5,), seed=0)
    base = clock.client_time(0, model, steps=3, payload_bytes=1024)
    slow = clock.client_time(0, model, steps=3, payload_bytes=1024, slowdown=4.0)
    assert slow > base
    timing = clock.client_timing(0, model, steps=3, payload_bytes=1024)
    assert slow - base == pytest.approx((4.0 - 1.0) * timing.compute_s)
