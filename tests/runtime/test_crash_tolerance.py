"""Crash tolerance: a worker that dies mid-round must not kill the run.

The injection is a task that hard-exits its worker process (``os._exit`` —
no exception, no cleanup, exactly what an OOM kill looks like to the pool).
The recovery ladder must finish the round with the healthy clients, report
the poison client as ``"worker-crash"``, and keep later rounds working on a
re-armed pool.
"""

from __future__ import annotations

import os

import numpy as np
import pytest

from repro.fl.algorithms.base import FLConfig
from repro.fl.algorithms.fedavg import FedAvg
from repro.runtime.executors import (
    WORKER_CRASH,
    ClientUpdate,
    ParallelExecutor,
    PersistentParallelExecutor,
    RetryPolicy,
    SerialExecutor,
    fork_available,
)

needs_fork = pytest.mark.skipif(not fork_available(), reason="needs fork start method")

# Tight budgets so the deterministic poison task is attributed in
# milliseconds: isolate immediately, two attempts, near-zero backoff.
FAST_RETRY = RetryPolicy(max_attempts=2, backoff_s=0.001, isolate_after=1)

CRASH_CID = 2


def _crashing_work(cid, payload):
    if cid == CRASH_CID:
        os._exit(1)  # simulate an OOM-killed / segfaulted worker
    return ClientUpdate(client_id=cid, states={"s": {"x": payload["x"] + 1.0}})


def _healthy_work(cid, payload):
    return ClientUpdate(client_id=cid, states={"s": {"x": payload["x"] + 1.0}})


def _tasks(n=5):
    rng = np.random.default_rng(0)
    return [(cid, {"x": rng.normal(size=(2, 2))}) for cid in range(n)]


class TestRetryPolicy:
    def test_validation(self):
        with pytest.raises(ValueError):
            RetryPolicy(max_attempts=0)
        with pytest.raises(ValueError):
            RetryPolicy(backoff_s=-1.0)
        with pytest.raises(ValueError):
            RetryPolicy(isolate_after=0)
        with pytest.raises(ValueError):
            RetryPolicy(task_timeout_s=0.0)

    def test_defaults_are_bounded(self):
        p = RetryPolicy()
        assert p.max_attempts >= 1 and p.task_timeout_s is None


@needs_fork
@pytest.mark.parametrize(
    "make_executor",
    [
        lambda: ParallelExecutor(2, retry=FAST_RETRY),
        lambda: PersistentParallelExecutor(2, retry=FAST_RETRY),
    ],
    ids=["parallel", "persistent"],
)
class TestWorkerCrash:
    def test_round_survives_and_reports(self, make_executor):
        tasks = _tasks(5)
        with make_executor() as ex:
            updates = ex.run_round(_crashing_work, tasks)
            # every healthy client finished, in task order
            assert [u.client_id for u in updates] == [0, 1, 3, 4]
            for (cid, payload), u in zip(
                [t for t in tasks if t[0] != CRASH_CID], updates
            ):
                np.testing.assert_array_equal(u.states["s"]["x"], payload["x"] + 1.0)
            # the poison client is a failure, not an exception
            assert ex.last_round_failures == {CRASH_CID: WORKER_CRASH}

    def test_next_round_rearms(self, make_executor):
        tasks = _tasks(5)
        with make_executor() as ex:
            ex.run_round(_crashing_work, tasks)
            clean = ex.run_round(_healthy_work, tasks)
            assert [u.client_id for u in clean] == [0, 1, 2, 3, 4]
            assert ex.last_round_failures == {}

    def test_work_exception_still_propagates(self, make_executor):
        # Programming errors are not infrastructure failures: no retry, no
        # "worker-crash" masking — the exception reaches the caller.
        def boom(cid, payload):
            raise RuntimeError(f"client {cid} exploded")

        with make_executor() as ex, pytest.raises(RuntimeError, match="exploded"):
            ex.run_round(boom, _tasks(4))


@needs_fork
class TestPersistentPoolRecovery:
    def test_shipped_mode_kept_after_crash(self):
        with PersistentParallelExecutor(2, retry=FAST_RETRY) as ex:
            ex.run_round(_crashing_work, _tasks(5))
            assert ex.last_round_mode == "shipped"
            ex.run_round(_healthy_work, _tasks(5))
            # recovery did not demote the executor to fork-per-round
            assert ex.last_round_mode == "shipped"


class TestContextManager:
    def test_serial_noop(self):
        with SerialExecutor() as ex:
            updates = ex.run_round(_healthy_work, _tasks(3))
        assert len(updates) == 3 and ex.last_round_failures == {}

    @needs_fork
    def test_persistent_pool_released(self):
        ex = PersistentParallelExecutor(2)
        with ex:
            ex.run_round(_healthy_work, _tasks(4))
            assert ex._pool is not None
        assert ex._pool is None


@needs_fork
class TestAlgorithmLevelCrash:
    def test_run_records_worker_crash(self, micro_fed, micro_model_fn):
        """A worker death inside client work flows into the history like an
        injected fault: the round completes, the client is a failure."""

        class CrashyFedAvg(FedAvg):
            name = "FedAvg"

            def client_work(self, round_idx, cid, payload):
                if round_idx == 0 and cid == self._crash_cid:
                    os._exit(1)
                return super().client_work(round_idx, cid, payload)

        cfg = FLConfig(
            rounds=2, sample_ratio=1.0, local_epochs=1, batch_size=16, seed=0, workers=2
        )
        algo = CrashyFedAvg(micro_model_fn, micro_fed, cfg)
        algo.runtime.executor = ParallelExecutor(2, retry=FAST_RETRY)
        algo._crash_cid = algo.select_clients(0)[0]
        history = algo.run()

        assert history.num_rounds == 2
        first = history.records[0]
        assert first.failures.get(algo._crash_cid) == WORKER_CRASH
        assert first.num_failed >= 1
        # crashed client was excluded from aggregation, not silently counted
        assert first.num_selected == first.num_sampled - first.num_failed
        # the second round recovered fully
        assert history.records[1].failures == {}
        assert history.total_failures() == {WORKER_CRASH: 1}
