"""Executor contract: serial and parallel backends return identical updates,
in task order, for pure work functions."""

from __future__ import annotations

import numpy as np
import pytest

from repro.runtime.executors import (
    ClientUpdate,
    ParallelExecutor,
    SerialExecutor,
    fork_available,
    make_executor,
)


def _square_work(cid, payload):
    return ClientUpdate(
        client_id=cid,
        states={"state": {"x": payload["x"] ** 2}},
        weight=float(cid),
        steps=int(payload["x"].size),
    )


def _tasks(n=6):
    rng = np.random.default_rng(0)
    return [(cid, {"x": rng.normal(size=(3, 3))}) for cid in range(n)]


class TestMakeExecutor:
    def test_mapping(self):
        assert isinstance(make_executor(0), SerialExecutor)
        assert isinstance(make_executor(1), SerialExecutor)
        ex = make_executor(4)
        assert isinstance(ex, ParallelExecutor)
        assert ex.workers == 4

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            make_executor(-1)
        with pytest.raises(ValueError):
            ParallelExecutor(0)


class TestRunRound:
    def test_serial_order(self):
        tasks = _tasks()
        updates = SerialExecutor().run_round(_square_work, tasks)
        assert [u.client_id for u in updates] == [cid for cid, _ in tasks]

    @pytest.mark.skipif(not fork_available(), reason="needs fork start method")
    def test_parallel_matches_serial(self):
        tasks = _tasks()
        serial = SerialExecutor().run_round(_square_work, tasks)
        parallel = ParallelExecutor(4).run_round(_square_work, tasks)
        assert [u.client_id for u in parallel] == [u.client_id for u in serial]
        for s, p in zip(serial, parallel):
            np.testing.assert_array_equal(s.states["state"]["x"], p.states["state"]["x"])
            assert s.weight == p.weight and s.steps == p.steps

    @pytest.mark.skipif(not fork_available(), reason="needs fork start method")
    def test_parallel_supports_closures(self):
        """The work fn crosses into workers via fork inheritance, so an
        unpicklable closure (the common case: a bound method over a model)
        must work."""
        scale = np.float64(3.0)

        def work(cid, payload):
            return ClientUpdate(client_id=cid, states={"s": {"x": payload["x"] * scale}})

        tasks = _tasks(4)
        updates = ParallelExecutor(2).run_round(work, tasks)
        for (cid, payload), u in zip(tasks, updates):
            np.testing.assert_array_equal(u.states["s"]["x"], payload["x"] * 3.0)

    def test_parallel_degenerate_rounds_run_serial(self):
        # single task: not worth forking; must still produce the result
        updates = ParallelExecutor(4).run_round(_square_work, _tasks(1))
        assert len(updates) == 1 and updates[0].client_id == 0

    @pytest.mark.skipif(not fork_available(), reason="needs fork start method")
    def test_worker_exception_propagates(self):
        def boom(cid, payload):
            raise RuntimeError(f"client {cid} exploded")

        with pytest.raises(RuntimeError, match="exploded"):
            ParallelExecutor(2).run_round(boom, _tasks(4))
