"""Executor contract: serial, parallel and persistent backends return
identical updates, in task order, for pure work functions."""

from __future__ import annotations

import functools
import pickle

import numpy as np
import pytest

from repro.runtime import executors as ex_mod
from repro.runtime.executors import (
    ClientUpdate,
    ParallelExecutor,
    PersistentParallelExecutor,
    SerialExecutor,
    fork_available,
    make_executor,
)

needs_fork = pytest.mark.skipif(not fork_available(), reason="needs fork start method")


def _square_work(cid, payload):
    return ClientUpdate(
        client_id=cid,
        states={"state": {"x": payload["x"] ** 2}},
        weight=float(cid),
        steps=int(payload["x"].size),
    )


def _tasks(n=6):
    rng = np.random.default_rng(0)
    return [(cid, {"x": rng.normal(size=(3, 3))}) for cid in range(n)]


class TestMakeExecutor:
    def test_mapping(self):
        assert isinstance(make_executor(0), SerialExecutor)
        assert isinstance(make_executor(1), SerialExecutor)
        ex = make_executor(4)
        assert isinstance(ex, ParallelExecutor)
        assert ex.workers == 4

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            make_executor(-1)
        with pytest.raises(ValueError):
            ParallelExecutor(0)
        with pytest.raises(ValueError):
            PersistentParallelExecutor(0)

    def test_explicit_kind(self):
        assert isinstance(make_executor(4, "serial"), SerialExecutor)
        assert isinstance(make_executor(4, "parallel"), ParallelExecutor)
        ex = make_executor(4, "persistent")
        assert isinstance(ex, PersistentParallelExecutor)
        assert ex.workers == 4
        # workers < 2 with an explicit parallel kind means "use all cores"
        assert make_executor(0, "persistent").workers >= 1
        with pytest.raises(ValueError):
            make_executor(2, "threads")


class TestRunRound:
    def test_serial_order(self):
        tasks = _tasks()
        updates = SerialExecutor().run_round(_square_work, tasks)
        assert [u.client_id for u in updates] == [cid for cid, _ in tasks]

    @pytest.mark.skipif(not fork_available(), reason="needs fork start method")
    def test_parallel_matches_serial(self):
        tasks = _tasks()
        serial = SerialExecutor().run_round(_square_work, tasks)
        parallel = ParallelExecutor(4).run_round(_square_work, tasks)
        assert [u.client_id for u in parallel] == [u.client_id for u in serial]
        for s, p in zip(serial, parallel):
            np.testing.assert_array_equal(s.states["state"]["x"], p.states["state"]["x"])
            assert s.weight == p.weight and s.steps == p.steps

    @pytest.mark.skipif(not fork_available(), reason="needs fork start method")
    def test_parallel_supports_closures(self):
        """The work fn crosses into workers via fork inheritance, so an
        unpicklable closure (the common case: a bound method over a model)
        must work."""
        scale = np.float64(3.0)

        def work(cid, payload):
            return ClientUpdate(client_id=cid, states={"s": {"x": payload["x"] * scale}})

        tasks = _tasks(4)
        updates = ParallelExecutor(2).run_round(work, tasks)
        for (cid, payload), u in zip(tasks, updates):
            np.testing.assert_array_equal(u.states["s"]["x"], payload["x"] * 3.0)

    def test_parallel_degenerate_rounds_run_serial(self):
        # single task: not worth forking; must still produce the result
        updates = ParallelExecutor(4).run_round(_square_work, _tasks(1))
        assert len(updates) == 1 and updates[0].client_id == 0

    @pytest.mark.skipif(not fork_available(), reason="needs fork start method")
    def test_worker_exception_propagates(self):
        def boom(cid, payload):
            raise RuntimeError(f"client {cid} exploded")

        with pytest.raises(RuntimeError, match="exploded"):
            ParallelExecutor(2).run_round(boom, _tasks(4))


def _scaled_work(scale, cid, payload):
    return ClientUpdate(client_id=cid, states={"s": {"x": payload["x"] * scale}})


@needs_fork
class TestNestedExecutors:
    def test_fork_work_stack_is_reentrant(self):
        """Regression: the module-level work registry used to be a single
        slot, so an executor used *inside* another round's work saw (and
        then clobbered) the outer closure. The stack makes it reentrant."""
        inner_tasks = _tasks(3)

        def outer(cid, payload):
            inner = ParallelExecutor(2).run_round(
                functools.partial(_scaled_work, float(cid + 1)), inner_tasks
            )
            total = sum(u.states["s"]["x"].sum() for u in inner)
            return ClientUpdate(client_id=cid, weight=float(total))

        tasks = _tasks(2)
        got = ParallelExecutor(2).run_round(outer, tasks)
        want = SerialExecutor().run_round(outer, tasks)
        assert [u.weight for u in got] == [u.weight for u in want]
        assert ex_mod._FORK_WORK == []  # every frame popped on the way out

    def test_stack_clean_after_worker_exception(self):
        def boom(cid, payload):
            raise RuntimeError("kaboom")

        with pytest.raises(RuntimeError):
            ParallelExecutor(2).run_round(boom, _tasks(4))
        assert ex_mod._FORK_WORK == []


@needs_fork
class TestPersistentExecutor:
    def test_matches_serial_and_ships(self):
        tasks = _tasks()
        serial = SerialExecutor().run_round(_square_work, tasks)
        ex = PersistentParallelExecutor(4)
        try:
            for _round in range(3):  # pool reused across rounds
                got = ex.run_round(_square_work, tasks)
                assert ex.last_round_mode == "shipped"
                for s, p in zip(serial, got):
                    np.testing.assert_array_equal(
                        s.states["state"]["x"], p.states["state"]["x"]
                    )
                    assert s.weight == p.weight and s.steps == p.steps
        finally:
            ex.close()

    def test_unpicklable_work_falls_back_to_fork(self):
        # a partial over a lambda defeats pickle-by-reference
        work = functools.partial(_scaled_work, np.float64(2.0))
        unpicklable = functools.partial(
            lambda inner, cid, payload: inner(cid, payload), work
        )
        with pytest.raises(Exception):
            pickle.dumps(unpicklable)  # the premise of this test
        ex = PersistentParallelExecutor(2)
        try:
            tasks = _tasks(4)
            got = ex.run_round(unpicklable, tasks)
            assert ex.last_round_mode == "forked"
            for (cid, payload), u in zip(tasks, got):
                np.testing.assert_array_equal(u.states["s"]["x"], payload["x"] * 2.0)
        finally:
            ex.close()

    def test_degenerate_round_runs_serial(self):
        ex = PersistentParallelExecutor(4)
        try:
            updates = ex.run_round(_square_work, _tasks(1))
            assert ex.last_round_mode == "serial"
            assert len(updates) == 1 and updates[0].client_id == 0
            assert ex._pool is None  # never forked a pool for it
        finally:
            ex.close()

    def test_pickles_without_live_pool(self):
        """The executor rides along inside the shipped algorithm snapshot
        (reachable via algorithm.runtime.executor), so pickling it must
        drop the pool rather than explode on its locks/pipes."""
        ex = PersistentParallelExecutor(3)
        try:
            ex.run_round(_square_work, _tasks(4))  # pool is live now
            clone = pickle.loads(pickle.dumps(ex))
            assert clone.workers == 3
            assert clone._pool is None
            clone.close()
        finally:
            ex.close()

    def test_close_rearms(self):
        ex = PersistentParallelExecutor(2)
        tasks = _tasks(4)
        ex.run_round(_square_work, tasks)
        ex.close()
        assert ex._pool is None
        got = ex.run_round(_square_work, tasks)  # forks a fresh pool
        assert ex.last_round_mode == "shipped" and len(got) == len(tasks)
        ex.close()


@needs_fork
class TestPersistentBufferedFallback:
    """An unpicklable algorithm snapshot (local-closure model factory) on
    the persistent executor must degrade to the per-round fork path — and
    the buffered-aggregation server state riding on top of the run (the
    update buffer, staleness bookkeeping) must come through untouched."""

    def _run(self, fed, model_fn, executor):
        from repro.fl.algorithms import ALGORITHM_REGISTRY, FLConfig

        cfg = FLConfig(
            rounds=3,
            sample_ratio=0.5,
            local_epochs=1,
            batch_size=16,
            seed=1,
            faults="slowdown=10,straggler=0.4",
            aggregation="buffered",
            buffer_size=2,
            staleness_alpha=0.5,
            max_staleness=6,
            executor=executor,
            workers=2,
        )
        algo = ALGORITHM_REGISTRY.get("fedavg")(model_fn, fed, cfg)
        try:
            history = algo.run()
        finally:
            algo.runtime.executor.close()
        return algo, history

    def test_unpicklable_algo_keeps_buffer_semantics(self, micro_fed):
        from repro.nn.models import build_model

        def model_fn():  # local closure: defeats pickle-by-reference
            return build_model(
                "mlp", num_classes=4, in_channels=1, image_size=8,
                width_mult=0.25, seed=1,
            )

        with pytest.raises(Exception):
            pickle.dumps(model_fn)  # the premise: the snapshot cannot ship

        ref_algo, ref = self._run(micro_fed, model_fn, "serial")
        algo, got = self._run(micro_fed, model_fn, "persistent")
        # Shipping failed silently-gracefully: the round ran via fork.
        assert algo.runtime.executor.last_round_mode == "forked"
        # The buffered server regime is intact: identical history (the
        # fingerprint covers per-round merges), identical staleness mix,
        # and the straggler plan really did produce stale merges to keep.
        assert got.fingerprint() == ref.fingerprint()
        assert got.staleness_histogram() == ref.staleness_histogram()
        assert any(s > 0 for s in got.staleness_histogram())
        ref_state = ref_algo.global_model.state_dict()
        state = algo.global_model.state_dict()
        for k in ref_state:
            np.testing.assert_array_equal(ref_state[k], state[k], err_msg=k)
