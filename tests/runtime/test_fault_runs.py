"""End-to-end faulty runs: determinism, over-provisioning, deadlines, and
the virtual clock."""

from __future__ import annotations

import os
import subprocess
import sys

import numpy as np
import pytest

from repro.core import FedKEMF
from repro.fl.algorithms import ALGORITHM_REGISTRY, FLConfig
from repro.fl.devices import sample_device_profiles
from repro.runtime.clock import VirtualClock
from repro.runtime.runtime import FLRuntime


def _config(**overrides):
    base = dict(
        rounds=2, sample_ratio=0.5, local_epochs=1, batch_size=16, lr=0.05, seed=0,
        distill_epochs=1,
    )
    base.update(overrides)
    return FLConfig(**base)


class TestFaultyRunDeterminism:
    def test_same_seed_same_run(self, micro_fed, micro_model_fn):
        cfg = _config(faults="dropout=0.3,loss=0.2")
        histories = []
        for _ in range(2):
            algo = ALGORITHM_REGISTRY.get("fedavg")(micro_model_fn, micro_fed, cfg)
            histories.append(algo.run())
        a, b = histories
        assert [r.failures for r in a.records] == [r.failures for r in b.records]
        np.testing.assert_array_equal(a.accuracies, b.accuracies)
        np.testing.assert_array_equal(a.sim_times, b.sim_times)

    def test_seed_changes_fault_schedule(self, micro_fed, micro_model_fn):
        fails = []
        for seed in (0, 1):
            cfg = _config(faults="dropout=0.45,loss=0.3", rounds=3, seed=seed)
            algo = ALGORITHM_REGISTRY.get("fedavg")(micro_model_fn, micro_fed, cfg)
            fails.append([set(r.failures) for r in algo.run().records])
        assert fails[0] != fails[1]


class TestOverProvisioning:
    def test_sample_inflated_under_dropout(self, micro_fed, micro_model_fn):
        cfg = _config(faults="dropout=0.3")
        algo = ALGORITHM_REGISTRY.get("fedavg")(micro_model_fn, micro_fed, cfg)
        # 6 clients, ratio 0.5 → K = 3; ceil(3 / 0.7) = 5 sampled
        assert algo.sampler.per_round == 3
        assert algo.runtime.provision(3, 6) == 5
        history = algo.run()
        for r in history.records:
            assert r.num_sampled == 5
            assert r.num_selected <= 3  # never aggregates more than K
            assert r.num_selected == r.num_sampled - r.num_failed

    def test_can_be_disabled(self, micro_fed, micro_model_fn):
        cfg = _config(faults="dropout=0.3", over_provision=False)
        algo = ALGORITHM_REGISTRY.get("fedavg")(micro_model_fn, micro_fed, cfg)
        assert algo.runtime.provision(3, 6) == 3

    def test_provision_capped_by_population(self):
        from repro.runtime.faults import FaultPlan, FaultSpec

        rt = FLRuntime(plan=FaultPlan(FaultSpec(dropout=0.8)))
        assert rt.provision(3, 6) == 6  # ceil(3/0.2)=15, capped at the fleet


class TestFedKEMFFaultySmoke:
    def test_five_round_dropout_deadline_run(self, micro_fed, micro_model_fn):
        """The ISSUE acceptance scenario: FedKEMF, dropout 0.3, a deadline,
        5 rounds — completes, aggregates only survivors, and the history
        carries participation/failure/virtual-time records."""
        cfg = _config(
            rounds=5,
            faults="dropout=0.3,straggler=0.4,slowdown=3",
            deadline=3600.0,  # generous: deadline path on, all survivors fit
            fusion="weight-average",  # keep the smoke run fast
        )
        algo = FedKEMF(micro_model_fn, micro_fed, cfg, local_model_fns=micro_model_fn)
        assert algo.runtime.simulates_time
        history = algo.run()
        assert history.num_rounds == 5
        reasons = set(history.total_failures())
        assert reasons <= {"dropout", "uplink-lost", "deadline", "surplus"}
        assert sum(r.num_failed for r in history.records) > 0  # faults actually fired
        for r in history.records:
            assert r.num_selected == r.num_sampled - r.num_failed
            assert r.num_selected >= 1  # someone survived every round here
            assert r.sim_time_s > 0.0
        assert history.participation.min() >= 1

    def test_impossible_deadline_rejects_everyone(self, micro_fed, micro_model_fn):
        cfg = _config(
            rounds=1, faults="straggler=0.9,slowdown=4", deadline=1e-9,
            fusion="weight-average",
        )
        algo = FedKEMF(micro_model_fn, micro_fed, cfg, local_model_fns=micro_model_fn)
        before = {k: v.copy() for k, v in algo.global_model.state_dict().items()}
        history = algo.run()
        r = history.records[0]
        assert r.num_selected == 0
        assert set(r.failures.values()) <= {"deadline", "dropout", "uplink-lost"}
        assert r.sim_time_s == pytest.approx(1e-9)  # server waited out the deadline
        after = algo.global_model.state_dict()
        for k in before:  # nothing aggregated → server model untouched
            np.testing.assert_array_equal(before[k], after[k])


class TestVirtualClock:
    def test_monotone_in_slowdown_and_delay(self, micro_model_fn):
        profiles = sample_device_profiles(4, seed=0)
        clock = VirtualClock(profiles=profiles, batch_input_shape=(16, 1, 8, 8))
        model = micro_model_fn()
        base = clock.client_time(0, model, steps=10, payload_bytes=10_000)
        slowed = clock.client_time(0, model, steps=10, payload_bytes=10_000, slowdown=3.0)
        delayed = clock.client_time(
            0, model, steps=10, payload_bytes=10_000, extra_delay_s=5.0
        )
        assert base > 0
        assert slowed > base
        assert delayed == pytest.approx(base + 5.0)

    def test_flops_cached_per_architecture(self, micro_model_fn):
        profiles = sample_device_profiles(2, seed=0)
        clock = VirtualClock(profiles=profiles, batch_input_shape=(16, 1, 8, 8))
        model = micro_model_fn()
        clock.client_time(0, model, steps=5, payload_bytes=1000)
        clock.client_time(1, model, steps=5, payload_bytes=1000)
        assert len(clock._flops_cache) == 1


class TestImportOrder:
    """repro.runtime and repro.fl import each other's submodules lazily;
    both import orders must work from a cold interpreter."""

    @pytest.mark.parametrize(
        "stmt",
        [
            "import repro.runtime; import repro.fl.algorithms",
            "import repro.fl.algorithms; import repro.runtime",
            "from repro.fl.algorithms import FLConfig; FLConfig(faults='dropout=0.1')",
        ],
    )
    def test_cold_import(self, stmt):
        proc = subprocess.run(
            [sys.executable, "-c", stmt],
            capture_output=True,
            text=True,
            env=os.environ.copy(),
        )
        assert proc.returncode == 0, proc.stderr
