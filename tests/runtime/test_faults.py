"""Fault schedules must be pure functions of (seed, round, client)."""

from __future__ import annotations

import pytest

from repro.runtime.faults import FaultPlan, FaultSpec, NO_FAULTS, parse_fault_spec


class TestFaultSpec:
    def test_defaults_are_null(self):
        assert FaultSpec().is_null

    def test_validation(self):
        with pytest.raises(ValueError):
            FaultSpec(dropout=1.0)  # probability must stay below 1
        with pytest.raises(ValueError):
            FaultSpec(dropout=-0.1)
        with pytest.raises(ValueError):
            FaultSpec(straggler_slowdown=0.5)
        with pytest.raises(ValueError):
            FaultSpec(max_retries=-1)
        with pytest.raises(ValueError):
            FaultSpec(backoff_s=-1.0)


class TestParse:
    def test_none_and_empty(self):
        assert parse_fault_spec(None) is None
        assert parse_fault_spec("") is None
        assert parse_fault_spec("  ") is None

    def test_passthrough(self):
        spec = FaultSpec(dropout=0.2)
        assert parse_fault_spec(spec) is spec

    def test_full_spec(self):
        spec = parse_fault_spec(
            "dropout=0.3, loss=0.1, slowdown=4, straggler=0.25, retries=3, backoff=0.2"
        )
        assert spec == FaultSpec(
            dropout=0.3,
            uplink_loss=0.1,
            straggler_slowdown=4.0,
            straggler_rate=0.25,
            max_retries=3,
            backoff_s=0.2,
        )

    @pytest.mark.parametrize("bad", ["dropout", "frobnicate=1", "dropout=2.0"])
    def test_malformed_rejected(self, bad):
        with pytest.raises(ValueError):
            parse_fault_spec(bad)

    def test_unknown_key_error_is_actionable(self):
        """Regression: a typo must name every valid key from *both*
        vocabularies, not just fail."""
        with pytest.raises(ValueError) as err:
            parse_fault_spec("dropuot=0.3")
        msg = str(err.value)
        assert "dropuot" in msg
        for key in ("dropout", "straggler", "slowdown", "loss", "retries", "backoff"):
            assert key in msg
        for key in ("signflip", "scale", "noise", "labelflip", "freerider", "logitcorrupt"):
            assert key in msg


class TestFaultPlan:
    SPEC = FaultSpec(dropout=0.3, straggler_rate=0.5, uplink_loss=0.2)

    def test_deterministic_and_order_independent(self):
        a = FaultPlan(self.SPEC, seed=7)
        b = FaultPlan(self.SPEC, seed=7)
        keys = [(r, c) for r in range(4) for c in range(8)]
        forward = [a.decide(r, c) for r, c in keys]
        backward = [b.decide(r, c) for r, c in reversed(keys)]
        assert forward == list(reversed(backward))
        # and re-asking the same plan gives the same answers
        assert forward == [a.decide(r, c) for r, c in keys]

    def test_seed_changes_schedule(self):
        a = FaultPlan(self.SPEC, seed=0)
        b = FaultPlan(self.SPEC, seed=1)
        keys = [(r, c) for r in range(6) for c in range(10)]
        assert [a.decide(*k) for k in keys] != [b.decide(*k) for k in keys]

    def test_axes_independent(self):
        """Enabling uplink loss must not perturb the dropout schedule (each
        decision consumes a fixed number of variates per axis)."""
        drop_only = FaultPlan(FaultSpec(dropout=0.3), seed=3)
        with_loss = FaultPlan(FaultSpec(dropout=0.3, uplink_loss=0.4), seed=3)
        for r in range(4):
            for c in range(10):
                assert drop_only.decide(r, c).dropped == with_loss.decide(r, c).dropped

    def test_fault_rates_roughly_match(self):
        plan = FaultPlan(self.SPEC, seed=11)
        decisions = [plan.decide(r, c) for r in range(50) for c in range(20)]
        drop_rate = sum(d.dropped for d in decisions) / len(decisions)
        assert 0.25 < drop_rate < 0.35
        slow_rate = sum(d.slowdown > 1.0 for d in decisions) / len(decisions)
        assert 0.45 < slow_rate < 0.55

    def test_slowdown_bounded(self):
        spec = FaultSpec(straggler_rate=0.9, straggler_slowdown=4.0)
        plan = FaultPlan(spec, seed=5)
        for r in range(10):
            for c in range(10):
                assert 1.0 <= plan.decide(r, c).slowdown <= 4.0

    def test_uplink_attempt_budget(self):
        spec = FaultSpec(uplink_loss=0.8, max_retries=2)
        plan = FaultPlan(spec, seed=9)
        decisions = [plan.decide(r, c) for r in range(30) for c in range(10)]
        assert any(d.uplink_attempts is None for d in decisions)  # some fully lost
        for d in decisions:
            if d.uplink_attempts is not None:
                assert 1 <= d.uplink_attempts <= spec.max_retries + 1

    def test_retry_delay(self):
        plan = FaultPlan(FaultSpec(uplink_loss=0.5, max_retries=2, backoff_s=0.5))
        assert plan.retry_delay_s(1) == 0.0  # first try landed: no backoff
        assert plan.retry_delay_s(2) == 0.5
        assert plan.retry_delay_s(3) == 1.5
        assert plan.retry_delay_s(None) == 1.5  # all three transmissions lost

    def test_no_faults_constant(self):
        assert not NO_FAULTS.dropped
        assert NO_FAULTS.slowdown == 1.0
        assert NO_FAULTS.uplink_attempts == 1
