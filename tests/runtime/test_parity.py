"""The acceptance property of the execution runtime: a parallel run is
numerically identical to the serial reference — same histories, same final
models — for both FedAvg and FedKEMF, on every executor backend."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import FedKEMF
from repro.fl.algorithms import ALGORITHM_REGISTRY, FLConfig
from repro.runtime.executors import (
    ParallelExecutor,
    PersistentParallelExecutor,
    fork_available,
)


def _assert_histories_identical(a, b):
    assert a.num_rounds == b.num_rounds
    for ra, rb in zip(a.records, b.records):
        assert ra.accuracy == rb.accuracy  # bit-identical, not allclose
        assert ra.loss == rb.loss
        assert ra.cum_bytes == rb.cum_bytes
        assert ra.round_bytes == rb.round_bytes
        assert ra.num_selected == rb.num_selected
        assert ra.num_sampled == rb.num_sampled
        assert ra.num_failed == rb.num_failed
        assert ra.failures == rb.failures
        assert ra.sim_time_s == rb.sim_time_s


def _assert_models_identical(m_a, m_b):
    sa, sb = m_a.state_dict(), m_b.state_dict()
    assert list(sa) == list(sb)
    for k in sa:
        np.testing.assert_array_equal(sa[k], sb[k], err_msg=k)


def _config(**overrides):
    base = dict(
        rounds=2,
        sample_ratio=0.5,
        local_epochs=1,
        batch_size=16,
        lr=0.05,
        seed=0,
        distill_epochs=1,
    )
    base.update(overrides)
    return FLConfig(**base)


needs_fork = pytest.mark.skipif(not fork_available(), reason="needs fork start method")


@needs_fork
class TestSerialParallelParity:
    def test_fedavg(self, micro_fed, micro_model_fn):
        serial = ALGORITHM_REGISTRY.get("fedavg")(
            micro_model_fn, micro_fed, _config(workers=0)
        )
        parallel = ALGORITHM_REGISTRY.get("fedavg")(
            micro_model_fn, micro_fed, _config(workers=4)
        )
        assert isinstance(parallel.runtime.executor, ParallelExecutor)
        _assert_histories_identical(serial.run(), parallel.run())
        _assert_models_identical(serial.global_model, parallel.global_model)
        assert serial.meter.total == parallel.meter.total

    def test_fedkemf(self, micro_fed, micro_model_fn):
        runs = {}
        for workers in (0, 4):
            algo = FedKEMF(
                micro_model_fn, micro_fed, _config(workers=workers),
                local_model_fns=micro_model_fn,
            )
            runs[workers] = (algo.run(), algo)
        _assert_histories_identical(runs[0][0], runs[4][0])
        _assert_models_identical(runs[0][1].global_model, runs[4][1].global_model)
        # persistent on-device models must round-trip through the workers
        for m_s, m_p in zip(
            runs[0][1].local_models_for_eval(), runs[4][1].local_models_for_eval()
        ):
            _assert_models_identical(m_s, m_p)

    def test_fedavg_parity_under_faults(self, micro_fed, micro_model_fn):
        cfg = dict(faults="dropout=0.3,loss=0.2,straggler=0.5,slowdown=3")
        serial = ALGORITHM_REGISTRY.get("fedavg")(
            micro_model_fn, micro_fed, _config(workers=0, **cfg)
        )
        parallel = ALGORITHM_REGISTRY.get("fedavg")(
            micro_model_fn, micro_fed, _config(workers=4, **cfg)
        )
        _assert_histories_identical(serial.run(), parallel.run())
        _assert_models_identical(serial.global_model, parallel.global_model)


@needs_fork
class TestThreeWayParity:
    """Serial vs per-round-fork vs persistent-pool: bit-identical histories
    and models under the same seed, and the persistent run must actually
    take the shipped-snapshot path (not silently fall back)."""

    def _run(self, algo_factory, executor_kind):
        algo = algo_factory(_config(workers=4, executor=executor_kind))
        history = algo.run()
        return history, algo

    def _check(self, algo_factory):
        runs = {k: self._run(algo_factory, k) for k in ("serial", "parallel", "persistent")}
        assert isinstance(runs["parallel"][1].runtime.executor, ParallelExecutor)
        persistent_ex = runs["persistent"][1].runtime.executor
        assert isinstance(persistent_ex, PersistentParallelExecutor)
        assert persistent_ex.last_round_mode == "shipped"
        for kind in ("parallel", "persistent"):
            _assert_histories_identical(runs["serial"][0], runs[kind][0])
            _assert_models_identical(
                runs["serial"][1].global_model, runs[kind][1].global_model
            )
            assert runs["serial"][1].meter.total == runs[kind][1].meter.total
        return runs

    def test_fedavg(self, micro_fed, micro_model_fn):
        self._check(
            lambda cfg: ALGORITHM_REGISTRY.get("fedavg")(micro_model_fn, micro_fed, cfg)
        )

    def test_fedkemf(self, micro_fed, micro_model_fn):
        runs = self._check(
            lambda cfg: FedKEMF(
                micro_model_fn, micro_fed, cfg, local_model_fns=micro_model_fn
            )
        )
        # persistent on-device models must round-trip through the pool too
        for kind in ("parallel", "persistent"):
            for m_s, m_p in zip(
                runs["serial"][1].local_models_for_eval(),
                runs[kind][1].local_models_for_eval(),
            ):
                _assert_models_identical(m_s, m_p)


class TestRuntimeMeta:
    def test_history_records_runtime(self, micro_fed, micro_model_fn):
        algo = ALGORITHM_REGISTRY.get("fedavg")(micro_model_fn, micro_fed, _config())
        history = algo.run()
        rt = history.meta["runtime"]
        assert rt["executor"] == "SerialExecutor"
        assert rt["workers"] == 1
        assert rt["faults"] is None and rt["deadline"] is None
