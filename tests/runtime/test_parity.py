"""The acceptance property of the execution runtime: a parallel run is
numerically identical to the serial reference — same histories, same final
models — for both FedAvg and FedKEMF."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import FedKEMF
from repro.fl.algorithms import ALGORITHM_REGISTRY, FLConfig
from repro.runtime.executors import ParallelExecutor, fork_available


def _assert_histories_identical(a, b):
    assert a.num_rounds == b.num_rounds
    for ra, rb in zip(a.records, b.records):
        assert ra.accuracy == rb.accuracy  # bit-identical, not allclose
        assert ra.loss == rb.loss
        assert ra.cum_bytes == rb.cum_bytes
        assert ra.round_bytes == rb.round_bytes
        assert ra.num_selected == rb.num_selected
        assert ra.num_sampled == rb.num_sampled
        assert ra.num_failed == rb.num_failed
        assert ra.failures == rb.failures
        assert ra.sim_time_s == rb.sim_time_s


def _assert_models_identical(m_a, m_b):
    sa, sb = m_a.state_dict(), m_b.state_dict()
    assert list(sa) == list(sb)
    for k in sa:
        np.testing.assert_array_equal(sa[k], sb[k], err_msg=k)


def _config(**overrides):
    base = dict(
        rounds=2,
        sample_ratio=0.5,
        local_epochs=1,
        batch_size=16,
        lr=0.05,
        seed=0,
        distill_epochs=1,
    )
    base.update(overrides)
    return FLConfig(**base)


needs_fork = pytest.mark.skipif(not fork_available(), reason="needs fork start method")


@needs_fork
class TestSerialParallelParity:
    def test_fedavg(self, micro_fed, micro_model_fn):
        serial = ALGORITHM_REGISTRY.get("fedavg")(
            micro_model_fn, micro_fed, _config(workers=0)
        )
        parallel = ALGORITHM_REGISTRY.get("fedavg")(
            micro_model_fn, micro_fed, _config(workers=4)
        )
        assert isinstance(parallel.runtime.executor, ParallelExecutor)
        _assert_histories_identical(serial.run(), parallel.run())
        _assert_models_identical(serial.global_model, parallel.global_model)
        assert serial.meter.total == parallel.meter.total

    def test_fedkemf(self, micro_fed, micro_model_fn):
        runs = {}
        for workers in (0, 4):
            algo = FedKEMF(
                micro_model_fn, micro_fed, _config(workers=workers),
                local_model_fns=micro_model_fn,
            )
            runs[workers] = (algo.run(), algo)
        _assert_histories_identical(runs[0][0], runs[4][0])
        _assert_models_identical(runs[0][1].global_model, runs[4][1].global_model)
        # persistent on-device models must round-trip through the workers
        for m_s, m_p in zip(
            runs[0][1].local_models_for_eval(), runs[4][1].local_models_for_eval()
        ):
            _assert_models_identical(m_s, m_p)

    def test_fedavg_parity_under_faults(self, micro_fed, micro_model_fn):
        cfg = dict(faults="dropout=0.3,loss=0.2,straggler=0.5,slowdown=3")
        serial = ALGORITHM_REGISTRY.get("fedavg")(
            micro_model_fn, micro_fed, _config(workers=0, **cfg)
        )
        parallel = ALGORITHM_REGISTRY.get("fedavg")(
            micro_model_fn, micro_fed, _config(workers=4, **cfg)
        )
        _assert_histories_identical(serial.run(), parallel.run())
        _assert_models_identical(serial.global_model, parallel.global_model)


class TestRuntimeMeta:
    def test_history_records_runtime(self, micro_fed, micro_model_fn):
        algo = ALGORITHM_REGISTRY.get("fedavg")(micro_model_fn, micro_fed, _config())
        history = algo.run()
        rt = history.meta["runtime"]
        assert rt["executor"] == "SerialExecutor"
        assert rt["workers"] == 1
        assert rt["faults"] is None and rt["deadline"] is None
