"""Documentation consistency: the promises in DESIGN.md/README point at
things that exist."""

import pathlib
import re

import pytest

ROOT = pathlib.Path(__file__).parent.parent


class TestDesignDoc:
    def test_exists_and_confirms_paper(self):
        text = (ROOT / "DESIGN.md").read_text()
        assert "FedKEMF" in text
        assert "confirmed match" in text

    def test_bench_targets_exist(self):
        text = (ROOT / "DESIGN.md").read_text()
        for target in re.findall(r"benchmarks/(bench_\w+\.py)", text):
            assert (ROOT / "benchmarks" / target).exists(), f"missing {target}"

    def test_named_packages_importable(self):
        text = (ROOT / "DESIGN.md").read_text()
        for mod in set(re.findall(r"`(repro\.[a-z_.]+)`", text)):
            mod = mod.rstrip(".")
            __import__(mod)


class TestReadme:
    def test_examples_listed_exist(self):
        text = (ROOT / "README.md").read_text()
        for script in re.findall(r"`(\w+\.py)`", text):
            if script in ("setup.py",):
                continue
            assert (ROOT / "examples" / script).exists(), f"missing example {script}"

    def test_quickstart_snippet_runs_conceptually(self):
        """The README's code block must at least name real API symbols."""
        text = (ROOT / "README.md").read_text()
        from repro.core import FedKEMF  # noqa: F401
        from repro.data import build_federated_dataset  # noqa: F401
        from repro.fl import FLConfig  # noqa: F401
        from repro.nn.models import build_model  # noqa: F401

        for symbol in ("FedKEMF", "build_federated_dataset", "FLConfig", "build_model"):
            assert symbol in text


class TestExperimentsDoc:
    def test_exists_with_verdicts(self):
        text = (ROOT / "EXPERIMENTS.md").read_text()
        assert "Table 3" in text and "Figure 7" in text
        assert "✔" in text  # at least one confirmed shape

    def test_results_paths_referenced(self):
        text = (ROOT / "EXPERIMENTS.md").read_text()
        for stem in ("table1", "table2", "table3", "figure4", "figure7"):
            assert f"results/{stem}.txt" in text


class TestExamplesAreScripts:
    @pytest.mark.parametrize(
        "script",
        [p.name for p in (ROOT / "examples").glob("*.py")],
    )
    def test_has_main_guard_and_docstring(self, script):
        text = (ROOT / "examples" / script).read_text()
        assert '__name__ == "__main__"' in text
        assert text.lstrip().startswith(("#!", '"""'))
