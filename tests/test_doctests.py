"""Run the doctests embedded in public docstrings."""

import doctest

import pytest

import repro.data.dataset
import repro.nn.models.factory
import repro.nn.profiler
import repro.utils.registry


@pytest.mark.parametrize(
    "module",
    [
        repro.utils.registry,
        repro.nn.models.factory,
        repro.nn.profiler,
        repro.data.dataset,
    ],
    ids=lambda m: m.__name__,
)
def test_module_doctests(module):
    results = doctest.testmod(module, verbose=False)
    assert results.failed == 0, f"{results.failed} doctest failures in {module.__name__}"
    assert results.attempted > 0, f"no doctests collected from {module.__name__}"
