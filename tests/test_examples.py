"""Example scripts — static checks always; full execution behind an env flag.

The examples take minutes of CPU, so `pytest tests/` only compiles them and
checks their imports resolve; set ``REPRO_RUN_EXAMPLES=1`` to execute each
end to end (used before releases).
"""

import ast
import os
import pathlib
import subprocess
import sys

import pytest

EXAMPLES = sorted((pathlib.Path(__file__).parent.parent / "examples").glob("*.py"))
RUN = os.environ.get("REPRO_RUN_EXAMPLES", "0") == "1"


@pytest.mark.parametrize("script", EXAMPLES, ids=lambda p: p.name)
def test_example_compiles(script):
    source = script.read_text()
    tree = ast.parse(source, filename=str(script))
    # must define main() and guard it
    names = {n.name for n in ast.walk(tree) if isinstance(n, ast.FunctionDef)}
    assert "main" in names, f"{script.name} has no main()"
    compile(source, str(script), "exec")


@pytest.mark.parametrize("script", EXAMPLES, ids=lambda p: p.name)
def test_example_imports_resolve(script):
    """Every `from repro...` import in the script must resolve."""
    tree = ast.parse(script.read_text())
    for node in ast.walk(tree):
        if isinstance(node, ast.ImportFrom) and node.module and node.module.startswith("repro"):
            mod = __import__(node.module, fromlist=[a.name for a in node.names])
            for alias in node.names:
                assert hasattr(mod, alias.name), (
                    f"{script.name}: {node.module} has no {alias.name}"
                )


@pytest.mark.skipif(not RUN, reason="set REPRO_RUN_EXAMPLES=1 to execute examples")
@pytest.mark.parametrize("script", EXAMPLES, ids=lambda p: p.name)
def test_example_runs(script):
    proc = subprocess.run(
        [sys.executable, str(script)], capture_output=True, text=True, timeout=1800
    )
    assert proc.returncode == 0, proc.stderr[-2000:]
