"""Cross-cutting integration tests: the full pipeline end to end.

Everything here runs at micro scale (seconds), exercising the exact code
paths the benchmark harness uses.
"""

import numpy as np
import pytest

from repro.core import FedKEMF
from repro.experiments.runner import ExperimentRunner
from repro.fl import FedAvg, FedNova, FedProx, FLConfig, Scaffold
from repro.nn.models import build_model


@pytest.fixture(scope="module")
def runner(micro_scale):
    return ExperimentRunner(micro_scale)


class TestPairedComparisons:
    def test_identical_client_schedule_across_algorithms(self, runner):
        """Paired runs must sample the same clients each round — the property
        that makes Table 1/2 deltas attributable to the algorithm."""
        fed = runner.fed("cifar10", 4, alpha=0.5)
        cfg = FLConfig(rounds=3, sample_ratio=0.5, local_epochs=1, batch_size=16, seed=0)
        model_fn = runner.model_fn("mlp", "cifar10")
        schedules = []
        for cls in (FedAvg, FedProx, FedNova, Scaffold):
            algo = cls(model_fn, fed, cfg)
            schedules.append([algo.sampler.sample(r) for r in range(3)])
        for s in schedules[1:]:
            assert s == schedules[0]

    def test_shared_data_views(self, runner):
        """The runner hands every algorithm the same federation object."""
        assert runner.fed("cifar10", 4, alpha=0.5) is runner.fed("cifar10", 4, alpha=0.5)


class TestEndToEndFedKEMF:
    def test_mnist_pipeline(self, runner):
        h = runner.run("fedkemf", "cnn-2", dataset="mnist", setting="30")
        assert h.num_rounds == runner.scale.mnist_rounds
        assert np.isfinite(h.accuracies).all()

    def test_knowledge_payload_counts_match_meter(self, runner):
        """Meter totals must equal rounds × selected × 2 × payload exactly."""
        fed = runner.fed("cifar10", 4, alpha=0.5)
        cfg = FLConfig(rounds=2, sample_ratio=0.5, local_epochs=1, batch_size=16, seed=0)
        kfn = runner.knowledge_fn("cifar10")
        algo = FedKEMF(kfn, fed, cfg, local_model_fns=runner.model_fn("resnet-32", "cifar10"))
        h = algo.run()
        from repro.nn.serialization import dumps_state_dict

        payload = len(dumps_state_dict(kfn().state_dict()))
        selected_total = sum(r.num_selected for r in h.records)
        assert h.total_bytes == 2 * payload * selected_total

    def test_multi_model_heterogeneous_pipeline(self, runner):
        h = runner.run_multi_model("fedkemf", setting="30", sample_ratio=1.0)
        assert len(h.meta["multi_model"]) >= 1
        local = h.local_accuracies
        assert np.isfinite(local[-1])


class TestScaleInvariance:
    """Structural claims must hold at any scale — these mirror the bench
    assertions at micro scale so plain `pytest tests/` exercises them."""

    def test_fedkemf_cost_model_independent(self, runner):
        h20 = runner.run("fedkemf", "resnet-20", setting="30")
        h32 = runner.run("fedkemf", "resnet-32", setting="30")
        assert h20.total_bytes == h32.total_bytes

    def test_baseline_cost_model_dependent(self, runner):
        h20 = runner.run("fedavg", "resnet-20", setting="30")
        h32 = runner.run("fedavg", "resnet-32", setting="30")
        assert h32.total_bytes > h20.total_bytes

    def test_fednova_double_cost(self, runner):
        avg = runner.run("fedavg", "resnet-20", setting="30")
        nova = runner.run("fednova", "resnet-20", setting="30")
        ratio = nova.round_cost_per_client_mb() / avg.round_cost_per_client_mb()
        assert 1.7 < ratio < 2.2

    def test_scaffold_double_cost(self, runner):
        avg = runner.run("fedavg", "resnet-20", setting="30")
        scaf = runner.run("scaffold", "resnet-20", setting="30")
        ratio = scaf.round_cost_per_client_mb() / avg.round_cost_per_client_mb()
        assert 1.8 < ratio < 2.2


class TestDeterminismAcrossRunners:
    def test_fresh_runner_reproduces(self, micro_scale):
        a = ExperimentRunner(micro_scale).run("fedavg", "mlp", setting="30")
        b = ExperimentRunner(micro_scale).run("fedavg", "mlp", setting="30")
        np.testing.assert_allclose(a.accuracies, b.accuracies)
        assert a.total_bytes == b.total_bytes
