"""Utility-layer tests: RNG streams, registry, timer, logging."""

import logging
import time

import numpy as np
import pytest

from repro.utils import Registry, Timer, get_logger, new_rng, spawn_rngs, temp_seed
from repro.utils.rng import RngMixin, choice_without_replacement, derive_seed


class TestRngStreams:
    def test_same_seed_same_stream(self):
        a = new_rng(42, "data", 0).standard_normal(4)
        b = new_rng(42, "data", 0).standard_normal(4)
        np.testing.assert_array_equal(a, b)

    def test_streams_independent(self):
        a = new_rng(42, "data", 0).standard_normal(4)
        b = new_rng(42, "train", 0).standard_normal(4)
        assert not np.allclose(a, b)

    def test_indices_independent(self):
        a = new_rng(42, "data", 0).standard_normal(4)
        b = new_rng(42, "data", 1).standard_normal(4)
        assert not np.allclose(a, b)

    def test_unknown_stream_falls_back(self):
        # unknown stream names map to the generic stream deterministically
        assert derive_seed(1, "nonsense", 0) == derive_seed(1, "generic", 0)

    def test_spawn_rngs(self):
        rngs = spawn_rngs(7, 5, "train")
        assert len(rngs) == 5
        draws = [r.standard_normal() for r in rngs]
        assert len(set(draws)) == 5  # all distinct

    def test_none_seed_nondeterministic_allowed(self):
        r = new_rng(None)
        assert isinstance(r, np.random.Generator)

    def test_temp_seed(self):
        with temp_seed(3) as r1, temp_seed(3) as r2:
            np.testing.assert_array_equal(r1.standard_normal(3), r2.standard_normal(3))

    def test_mixin(self):
        class Thing(RngMixin):
            pass

        t = Thing()
        t.seed(5)
        a = t.rng.standard_normal(2)
        t.seed(5)
        np.testing.assert_array_equal(a, t.rng.standard_normal(2))

    def test_choice_without_replacement(self):
        rng = np.random.default_rng(0)
        out = choice_without_replacement(rng, list(range(10, 20)), 4)
        assert len(set(out)) == 4
        assert all(10 <= v < 20 for v in out)
        with pytest.raises(ValueError):
            choice_without_replacement(rng, [1, 2], 3)


class TestRegistry:
    def test_register_and_get(self):
        reg = Registry("thing")

        @reg.register("Foo-Bar", "fb")
        def make():
            return 1

        assert reg.get("foo-bar") is make
        assert reg.get("FB") is make
        assert reg.get("foo_bar") is make  # underscore normalization

    def test_duplicate_rejected(self):
        reg = Registry("thing")
        reg.add("a", 1)
        with pytest.raises(KeyError):
            reg.add("A", 2)

    def test_unknown_lists_known(self):
        reg = Registry("thing")
        reg.add("alpha", 1)
        with pytest.raises(KeyError, match="alpha"):
            reg.get("beta")

    def test_contains_iter_names(self):
        reg = Registry("thing")
        reg.add("b", 2)
        reg.add("a", 1)
        assert "a" in reg and "z" not in reg
        assert list(reg) == ["a", "b"]
        assert reg.names() == ["a", "b"]


class TestTimer:
    def test_context_manager(self):
        t = Timer()
        with t:
            time.sleep(0.01)
        assert t.elapsed >= 0.009
        assert len(t.laps) == 1

    def test_accumulates(self):
        t = Timer()
        for _ in range(3):
            with t:
                pass
        assert len(t.laps) == 3
        assert abs(t.mean_lap - t.elapsed / 3) < 1e-9

    def test_stop_without_start(self):
        with pytest.raises(RuntimeError):
            Timer().stop()

    def test_mean_lap_empty(self):
        assert Timer().mean_lap == 0.0


class TestLogging:
    def test_namespaced(self):
        log = get_logger("fl")
        assert log.name == "repro.fl"
        log2 = get_logger("repro.core")
        assert log2.name == "repro.core"

    def test_single_handler_on_root(self):
        get_logger("a")
        get_logger("b")
        root = logging.getLogger("repro")
        assert len(root.handlers) == 1
